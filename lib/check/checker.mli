(** The switch model checker.

    {!check} explores the abstract execution model of a (source,
    target, plan) switch depth-first — every interleaving of action
    starts and finishes the pool barriers admit, up to trace
    equivalence (visited-state dedup plus sleep-set pruning of
    commuting steps) — evaluating the invariant catalogue at every
    state; at each state it also enumerates crash cuts of the journal
    trace (commit-point boundary × group-commit buffer × torn-frame
    byte cut) and re-checks recovery. Bounded by default ([depth]
    branching steps, then the canonical schedule); [exhaustive]
    disables the depth bound, sleep sets, and torn-offset sampling, so
    only trace-equivalent duplicates are skipped. [sim_runs]
    additionally replays the plan on the real discrete-event executor
    under enumerated tie-break schedules ({!Sim_check}).

    The first violation is minimized by delta debugging into a
    replayable {!Witness.t}. *)

open Entropy_core

type limits = {
  depth : int;  (** branching depth in bounded mode *)
  max_states : int;
  max_crash_checks : int;
  max_violations : int;  (** stop exploring after this many *)
  exhaustive : bool;
  crash : bool;  (** explore crash states *)
  torn : bool;  (** check torn-frame byte cuts *)
  sim_runs : int;  (** executor conformance runs; 0 disables *)
}

val default_limits : limits
(** depth 8, 200k states, 4k crash checks, 16 violations, bounded,
    crash+torn on, 8 sim runs. *)

type stats = {
  mutable states : int;
  mutable transitions : int;
  mutable deduped : int;
  mutable sleep_pruned : int;
  mutable crash_checks : int;
  mutable torn_cuts : int;
  mutable sim_runs : int;
  mutable sim_decision_points : int;
  mutable elapsed_s : float;
}

type counterexample = {
  violation : Invariant.violation;
  witness : Witness.t;
  minimized : Witness.t;
}

type report = {
  violations : Invariant.violation list;
  counterexample : counterexample option;
  stats : stats;
  complete : bool;
      (** the bounded/exhaustive exploration covered the whole space
          within the limits *)
  invariants : Invariant.id list;
  action_count : int;
  pool_count : int;
}

val check :
  ?vjobs:Vjob.t list -> ?invariants:Invariant.id list -> ?limits:limits ->
  source:Configuration.t -> target:Configuration.t -> demand:Demand.t ->
  Plan.t -> report

val make_ctx :
  ?vjobs:Vjob.t list -> ?invariants:Invariant.id list ->
  source:Configuration.t -> target:Configuration.t -> demand:Demand.t ->
  Plan.t -> Model.ctx
(** The context {!replay} runs against (same normalization as
    {!check}). *)

val replay : Model.ctx -> Witness.t -> Invariant.violation list option
(** Replay a witness: [None] when its schedule is not executable
    (a step not enabled in sequence), otherwise every violation seen
    along it, including the crash-spec checks at its final state. *)

val states_per_sec : report -> float
val report_to_json : report -> Entropy_obs.Json.t
val pp_report : Format.formatter -> report -> unit
