(* Log source for the CP kernel. Enable with e.g.
   [Logs.Src.set_level Log.src (Some Logs.Debug)], or
   [entropyctl --debug cp]. *)

let src = Logs.Src.create "entropy.cp" ~doc:"Constraint-programming kernel"

include (val Logs.src_log src : Logs.LOG)
