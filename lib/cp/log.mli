(** Log source for the CP kernel ([entropy.cp]). Enable with e.g.
    [Logs.Src.set_level Log.src (Some Logs.Debug)], or
    [entropyctl --debug cp]. *)

val src : Logs.Src.t

include Logs.LOG
