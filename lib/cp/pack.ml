(* One-dimensional bin-packing propagator in the style of Shaw (CP'04),
   which the paper cites for the viability constraint: items (placement
   variable + size) must fit bins of fixed capacities.

   Propagation performed:
   - fail when a bin's committed load exceeds its capacity;
   - prune bin b from item i when committed(b) + size(i) > cap(b);
   - fail when the total size of unassigned items exceeds the total
     residual capacity.

   The propagator is incremental. It subscribes only to On_instantiate
   events (committed loads can change in no other way) and maintains,
   across wake-ups:
   - [committed]: per-bin load of bound items;
   - [state]: the total residual capacity and the unassigned demand;
   - [unassigned]: the indices of still-unbound items, packed in a
     prefix of length [nun.(0)] (swap-removal).
   All of it is trailed through [Store.save_cell], so backtracking
   restores the propagator state in lockstep with the domains. Each
   wake-up therefore costs O(unassigned) plus O(unassigned) per bin
   whose slack actually shrank, instead of rescanning and re-sorting
   every (item, bin) pair: newly bound items are committed, and only the
   touched bins are re-checked against the unassigned items. The first
   run primes the invariant by checking every bin once; afterwards
   "slack(b) < size(i) implies b pruned from i" holds at every fixpoint
   by induction, because undo restores domains and propagator state to a
   point where it held. *)

type item = { var : Var.t; size : int }

let item var size = { var; size }

let post store ?(name = "pack") ~items ~capacities () =
  let nbins = Array.length capacities in
  let n = Array.length items in
  let committed = Array.make nbins 0 in
  (* state.(0) = sum over bins of max(0, slack); state.(1) = unassigned demand *)
  let state = Array.make 2 0 in
  Array.iter (fun c -> if c > 0 then state.(0) <- state.(0) + c) capacities;
  Array.iter (fun it -> state.(1) <- state.(1) + it.size) items;
  let unassigned = Array.init n Fun.id in
  let nun = Array.make 1 n in
  (* scratch, reset at the end of every run (not trailed) *)
  let touched = Array.make (max nbins 1) 0 in
  let is_touched = Array.make nbins false in
  (* largest item size: a bin with at least this much slack can never
     prune anything, so its scan is skipped outright *)
  let max_size = Array.fold_left (fun acc it -> max acc it.size) 0 items in
  let primed = ref false in
  let p = Prop.make ~name ~priority:Prop.Expensive (fun () -> ()) in
  p.Prop.run <-
    (fun () ->
      let ntouched = ref 0 in
      (* [touch] doubles as the trail point for committed.(b): it runs
         exactly once per bin per wake-up, before the first mutation *)
      let touch b =
        if not is_touched.(b) then begin
          is_touched.(b) <- true;
          touched.(!ntouched) <- b;
          incr ntouched;
          Store.save_cell store committed b
        end
      in
      let saved_globals = ref false in
      let save_globals () =
        if not !saved_globals then begin
          saved_globals := true;
          Store.save_cell store state 0;
          Store.save_cell store state 1;
          Store.save_cell store nun 0
          (* the swapped [unassigned] cells are NOT trailed: the array
             stays a permutation of all item indices with the committed
             items parked at positions >= nun.(0) in commit order, so
             restoring nun.(0) alone restores the unassigned prefix as a
             set — and only the set matters *)
        end
      in
      let commit_new_items () =
        (* scan only the unassigned prefix for newly bound items *)
        let k = ref 0 in
        while !k < nun.(0) do
          let i = unassigned.(!k) in
          let it = items.(i) in
          if Var.is_bound it.var then begin
            let b = Var.value_exn it.var in
            save_globals ();
            state.(1) <- state.(1) - it.size;
            if b >= 0 && b < nbins then begin
              let old_slack = capacities.(b) - committed.(b) in
              let new_slack = old_slack - it.size in
              if new_slack < 0 then
                Store.fail "%s: bin %d overloaded (%d > %d)" name b
                  (committed.(b) + it.size) capacities.(b);
              touch b;
              committed.(b) <- committed.(b) + it.size;
              state.(0) <- state.(0) - (max old_slack 0 - max new_slack 0)
            end;
            (* swap-remove from the unassigned prefix *)
            let last = nun.(0) - 1 in
            unassigned.(!k) <- unassigned.(last);
            unassigned.(last) <- i;
            nun.(0) <- last
            (* do not advance k: it now holds the swapped-in item *)
          end
          else incr k
        done
      in
      let prune_bin b =
        let slack = capacities.(b) - committed.(b) in
        if slack < max_size then
          for k = 0 to nun.(0) - 1 do
            let it = items.(unassigned.(k)) in
            if it.size > slack then Store.remove store it.var b
            (* a removal may instantiate the item; it is committed on the
               next wake-up, and the prefix only changes there too *)
          done
      in
      Fun.protect
        ~finally:(fun () ->
          for j = 0 to !ntouched - 1 do
            is_touched.(touched.(j)) <- false
          done)
        (fun () ->
          commit_new_items ();
          if state.(1) > state.(0) then
            Store.fail "%s: %d units of unassigned demand, %d residual" name
              state.(1) state.(0);
          if not !primed then begin
            primed := true;
            for b = 0 to nbins - 1 do
              prune_bin b
            done
          end
          else
            for j = 0 to !ntouched - 1 do
              prune_bin touched.(j)
            done))
  ;
  Store.post_on store p
    ~on:
      [ ( Prop.On_instantiate,
          Array.to_list (Array.map (fun it -> it.var) items) ) ]
