(* Bounds-consistent linear constraints:  sum_i a_i * x_i  <= / = / >=  c.

   The classic propagation: with S_min = sum of minimal contributions,
   every term's bound follows from the slack c - (S_min - own minimal
   contribution). Equality posts both directions. *)

type term = int * Var.t (* coefficient, variable *)

let min_contrib (a, x) = if a >= 0 then a * Var.lo x else a * Var.hi x
let max_contrib (a, x) = if a >= 0 then a * Var.hi x else a * Var.lo x

let propagate_le store terms c () =
  let s_min = List.fold_left (fun s t -> s + min_contrib t) 0 terms in
  if s_min > c then
    Store.fail "linear_le: minimal sum %d exceeds bound %d" s_min c;
  let prune ((a, x) as t) =
    if a <> 0 then begin
      let slack = c - (s_min - min_contrib t) in
      if a > 0 then Store.remove_above store x (Arith.div_floor slack a)
      else
        (* a*x <= slack with a < 0  <=>  x >= ceil (slack / a)
           = -floor (slack / -a) since the divisor is negative *)
        Store.remove_below store x (-Arith.div_floor slack (-a))
    end
  in
  List.iter prune terms

let post_le store ~name terms c =
  let p = Prop.make ~name (fun () -> ()) in
  p.Prop.run <- propagate_le store terms c;
  (* bounds consistency: only lo/hi moves can change the propagation *)
  Store.post_on store p ~on:[ (Prop.On_bounds, List.map snd terms) ]

let sum_le store terms c = post_le store ~name:"linear_le" terms c

let sum_ge store terms c =
  (* distinct name: both directions watch the same variables with the
     same masks, the coefficients alone differ *)
  post_le store ~name:"linear_ge" (List.map (fun (a, x) -> (-a, x)) terms) (-c)

let sum_eq store terms c =
  sum_le store terms c;
  sum_ge store terms c

let sum_var store terms y =
  (* y = sum terms, i.e. sum terms - y = 0 *)
  sum_eq store ((-1, y) :: terms) 0

let weighted vars coefs =
  if Array.length vars <> Array.length coefs then
    invalid_arg "Linear.weighted: length mismatch";
  Array.to_list (Array.map2 (fun c v -> (c, v)) coefs vars)

let current_min terms =
  List.fold_left (fun s t -> s + min_contrib t) 0 terms

let current_max terms =
  List.fold_left (fun s t -> s + max_contrib t) 0 terms
