(** Propagators: named domain-narrowing closures. *)

type event =
  | On_instantiate  (** wake only when a watched domain becomes bound *)
  | On_bounds       (** wake when lo or hi of a watched domain moves *)
  | On_domain       (** wake on any removal from a watched domain *)
(** Wake events, ordered by strength: an instantiation implies a bounds
    move implies a domain change, and a subscription also wakes on any
    stronger event than the one subscribed to. *)

type priority =
  | Cheap      (** drained first: arithmetic, element, counting, ... *)
  | Expensive  (** drained when no cheap propagator is queued: pack, knapsack *)

type t = {
  id : int;
  name : string;
  priority : priority;
  mutable scheduled : bool;  (** true while queued for propagation *)
  mutable run : unit -> unit;
}

val fired_instantiate : int
val fired_bounds : int
val fired_domain : int
(** Event bits used in watcher masks (see {!Var.watch}). *)

val mask_of_event : event -> int

val make : name:string -> ?priority:priority -> (unit -> unit) -> t
(** [make ~name run] allocates a fresh propagator. [run] narrows domains
    through the owning {!Store.t} and raises {!Store.Inconsistent} on
    failure. The closure may be replaced after creation (used to break
    the store/propagator definition cycle). *)

val pp : Format.formatter -> t -> unit
