(* Small arithmetic constraints over pairs of variables. *)

let div_floor a b =
  (* b > 0 *)
  if a >= 0 then a / b else -(((-a) + b - 1) / b)

let div_ceil a b =
  (* b > 0 *)
  if a >= 0 then (a + b - 1) / b else -((-a) / b)

(* x <= y + c *)
let le_offset store x y c =
  let p =
    Prop.make ~name:"le_offset" (fun () -> ())
  in
  p.Prop.run <-
    (fun () ->
      Store.remove_above store x (Var.hi y + c);
      Store.remove_below store y (Var.lo x - c));
  Store.post_on store p ~on:[ (Prop.On_bounds, [ x; y ]) ]

let le store x y = le_offset store x y 0

let lt store x y = le_offset store x y (-1)

(* x = y + c *)
let eq_offset store x y c =
  let p = Prop.make ~name:"eq_offset" (fun () -> ()) in
  p.Prop.run <-
    (fun () ->
      Store.remove_above store x (Var.hi y + c);
      Store.remove_below store x (Var.lo y + c);
      Store.remove_above store y (Var.hi x - c);
      Store.remove_below store y (Var.lo x - c);
      (* value-level channeling when both sides are enumerable *)
      if Dom.enumerable (Var.dom x) && Dom.enumerable (Var.dom y) then begin
        Dom.iter
          (fun v -> if not (Var.mem (v - c) y) then Store.remove store x v)
          (Var.dom x);
        Dom.iter
          (fun v -> if not (Var.mem (v + c) x) then Store.remove store y v)
          (Var.dom y)
      end);
  Store.post store p ~on:[ x; y ]

let eq store x y = eq_offset store x y 0

(* x <> v *)
let neq_const store x v =
  let p = Prop.make ~name:"neq_const" (fun () -> ()) in
  p.Prop.run <- (fun () -> Store.remove store x v);
  Store.post store p ~on:[]

(* x <> y *)
let neq store x y =
  let p = Prop.make ~name:"neq" (fun () -> ()) in
  p.Prop.run <-
    (fun () ->
      if Var.is_bound x then Store.remove store y (Var.value_exn x)
      else if Var.is_bound y then Store.remove store x (Var.value_exn y));
  Store.post_on store p ~on:[ (Prop.On_instantiate, [ x; y ]) ]
