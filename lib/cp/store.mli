(** The constraint store: variables, backtracking trail, propagation queues.

    Typical use: create a store, create variables, post constraints (which
    register propagators via {!post} / {!post_on}), then call {!propagate}
    to reach a fixpoint; the {!Search} module drives the
    mark/instantiate/undo cycle. *)

exception Inconsistent of string
(** Raised when a propagator or update proves the current state has no
    solution. The store's propagation queues are cleared before the
    exception escapes {!propagate}. *)

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Inconsistent} with a formatted message. *)

type t
type mark

val create : unit -> t

val new_var : ?name:string -> t -> lo:int -> hi:int -> Var.t
val new_var_of_values : ?name:string -> t -> int list -> Var.t
val constant : t -> int -> Var.t

val vars : t -> Var.t list
(** All variables, in creation order. *)

val propagation_count : t -> int
(** Cumulative number of propagator executions (statistics). *)

val update_count : t -> int
(** Cumulative number of effective domain updates (statistics). *)

val prop_stats : t -> (string * int * int * float) list
(** Per-propagator observability counters aggregated by propagator name:
    [(name, wakes, runs, time_us)], sorted by name. Populated only while
    [Obs.enabled] was set (wake = a watched variable fired a subscribed
    event, including wakes of an already-queued propagator); empty
    otherwise. *)

val mark : t -> mark
val undo_to : t -> mark -> unit

val save_cell : t -> int array -> int -> unit
(** [save_cell t arr i] trails the current value of [arr.(i)]: a later
    {!undo_to} past this point writes it back. Lets propagators keep
    incremental state (committed loads, counters) that backtracks in
    lockstep with the domains. *)

val set_dom : t -> Var.t -> Dom.t -> unit
(** Replace a variable's domain (trailing the old one and waking watchers
    whose subscribed events fired when the domain actually shrank).
    Raises {!Inconsistent} when the new domain is empty. *)

val remove : t -> Var.t -> int -> unit
val remove_below : t -> Var.t -> int -> unit
val remove_above : t -> Var.t -> int -> unit
val instantiate : t -> Var.t -> int -> unit

val schedule : t -> Prop.t -> unit
(** Enqueue a propagator unless already queued. *)

val post : t -> Prop.t -> on:Var.t list -> unit
(** Register a propagator waking on {e any} change of [on] and schedule
    its first run. *)

val post_on : t -> Prop.t -> on:(Prop.event * Var.t list) list -> unit
(** Like {!post} but with per-group wake events: the propagator wakes
    only when a watched variable fires the subscribed event (or a
    stronger one — see {!Prop.event}). *)

val propagate : t -> unit
(** Run queued propagators to fixpoint, all [Cheap] ones before each
    [Expensive] one. Raises {!Inconsistent} on failure (queues are
    cleared first, so the store can be reused after undo). *)
