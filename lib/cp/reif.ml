(* Reified membership:  b <=> (x = v)  with b a 0/1 variable.
   Channels placement variables to boolean selectors (e.g. to feed the
   knapsack constraint with per-bin selection booleans). *)

let eq_const store x v b =
  let p = Prop.make ~name:"reif_eq_const" (fun () -> ()) in
  p.Prop.run <-
    (fun () ->
      Store.remove_below store b 0;
      Store.remove_above store b 1;
      if Var.is_bound b then begin
        if Var.value_exn b = 1 then Store.instantiate store x v
        else Store.remove store x v
      end
      else if not (Var.mem v x) then Store.instantiate store b 0
      else if Var.is_bound x then
        Store.instantiate store b (if Var.value_exn x = v then 1 else 0));
  (* x: any removal can decide b (losing v); b: only its instantiation acts *)
  Store.post_on store p
    ~on:[ (Prop.On_domain, [ x ]); (Prop.On_instantiate, [ b ]) ]
