(* Depth-first search with pluggable variable/value ordering, optional
   wall-clock timeout and branch-and-bound minimisation.

   The paper's optimiser (section 4.3) relies on exactly this machinery:
   a first-fail variable ordering that treats the most demanding VMs
   first, a value ordering that tries a VM's current location first, and
   branch & bound on the reconfiguration-cost variable with a timeout
   after which the best solution so far is kept. *)

module Obs = Entropy_obs.Obs
module Trace = Entropy_obs.Trace
module Metrics = Entropy_obs.Metrics

type stats = {
  mutable nodes : int;
  mutable fails : int;
  mutable backtracks : int;
  mutable solutions : int;
  mutable elapsed : float;
  mutable timed_out : bool;
}

let fresh_stats () =
  {
    nodes = 0;
    fails = 0;
    backtracks = 0;
    solutions = 0;
    elapsed = 0.;
    timed_out = false;
  }

let pp_stats ppf s =
  Fmt.pf ppf "nodes=%d fails=%d backtracks=%d solutions=%d elapsed=%.3fs%s"
    s.nodes s.fails s.backtracks s.solutions s.elapsed
    (if s.timed_out then " (timed out)" else "")

(* Metric handles, created on first traced search; [Metrics.reset] zeroes
   them in place so the lazies stay valid across runs. *)
let m_nodes = lazy (Metrics.counter "cp.search.nodes")
let m_fails = lazy (Metrics.counter "cp.search.fails")
let m_backtracks = lazy (Metrics.counter "cp.search.backtracks")
let m_solutions = lazy (Metrics.counter "cp.search.solutions")
let m_timeouts = lazy (Metrics.counter "cp.search.timeouts")
let m_restarts = lazy (Metrics.counter "cp.search.restarts")
let m_improvements = lazy (Metrics.counter "cp.search.improvements")

type var_select = Var.t array -> Var.t option
type val_select = Var.t -> int list
type val_iter = Var.t -> (int -> unit) -> unit

exception Stop
exception Timed_out

(* -- variable orderings -------------------------------------------------- *)

let in_order vars =
  let n = Array.length vars in
  let rec go i =
    if i >= n then None
    else if not (Var.is_bound vars.(i)) then Some vars.(i)
    else go (i + 1)
  in
  go 0

let first_fail vars =
  let best = ref None in
  Array.iter
    (fun x ->
      if not (Var.is_bound x) then
        match !best with
        | Some b when Var.size b <= Var.size x -> ()
        | _ -> best := Some x)
    vars;
  !best

let by_key key vars =
  let best = ref None in
  Array.iter
    (fun x ->
      if not (Var.is_bound x) then
        match !best with
        | Some b when key b <= key x -> ()
        | _ -> best := Some x)
    vars;
  !best

(* -- value orderings ------------------------------------------------------ *)

let min_value x = Dom.to_list (Var.dom x)

let max_value x = List.rev (Dom.to_list (Var.dom x))

let prefer preferred x =
  let vs = Dom.to_list (Var.dom x) in
  match preferred x with
  | Some p when Var.mem p x -> p :: List.filter (fun v -> v <> p) vs
  | _ -> vs

(* -- DFS ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()

(* How often (in nodes) the wall clock is consulted. gettimeofday costs
   more than a typical node expansion, so the deadline is only checked
   every [deadline_stride] nodes; node limits stay exact. *)
let deadline_stride_mask = 63

let iter_of_select (sel : val_select) : val_iter =
 fun x f -> List.iter f (sel x)

let solve_internal store ~vars ~var_select ~val_iter ~timeout ~node_limit
    ~on_node ~on_solution stats =
  let deadline =
    match timeout with Some t -> now () +. t | None -> infinity
  in
  let has_deadline = deadline < infinity in
  let check_limits () =
    if
      has_deadline
      && stats.nodes land deadline_stride_mask = 0
      && now () > deadline
    then raise Timed_out;
    match node_limit with
    | Some l when stats.nodes >= l -> raise Timed_out
    | _ -> ()
  in
  let rec descend () =
    stats.nodes <- stats.nodes + 1;
    check_limits ();
    on_node ();
    match var_select vars with
    | None ->
      stats.solutions <- stats.solutions + 1;
      if !Obs.enabled then
        Obs.instant ~cat:"cp" ~args:[ ("nodes", Trace.I stats.nodes) ]
          "cp.solution";
      on_solution ()
    | Some x ->
      let try_value v =
        let m = Store.mark store in
        (try
           Store.instantiate store x v;
           Store.propagate store;
           descend ();
           stats.backtracks <- stats.backtracks + 1;
           Store.undo_to store m
         with Store.Inconsistent _ ->
           stats.fails <- stats.fails + 1;
           stats.backtracks <- stats.backtracks + 1;
           Store.undo_to store m;
           (* fail-heavy regions advance few nodes: keep the deadline
              honest from the failure path as well *)
           if
             has_deadline
             && stats.fails land deadline_stride_mask = 0
             && now () > deadline
           then raise Timed_out)
      in
      val_iter x try_value
  in
  let start = now () in
  let span_start = if !Obs.enabled then Trace.now_us () else 0. in
  let root = Store.mark store in
  (try
     Store.propagate store;
     descend ()
   with
  | Store.Inconsistent _ -> stats.fails <- stats.fails + 1
  | Timed_out -> stats.timed_out <- true
  | Stop -> ());
  Store.undo_to store root;
  stats.elapsed <- now () -. start;
  if !Obs.enabled then begin
    Trace.complete ~cat:"cp" ~name:"cp.search"
      ~args:
        [
          ("nodes", Trace.I stats.nodes);
          ("fails", Trace.I stats.fails);
          ("solutions", Trace.I stats.solutions);
          ("timed_out", Trace.B stats.timed_out);
        ]
      ~ts_us:span_start
      ~dur_us:(Trace.now_us () -. span_start)
      ();
    Metrics.add (Lazy.force m_nodes) stats.nodes;
    Metrics.add (Lazy.force m_fails) stats.fails;
    Metrics.add (Lazy.force m_backtracks) stats.backtracks;
    Metrics.add (Lazy.force m_solutions) stats.solutions;
    if stats.timed_out then Metrics.incr (Lazy.force m_timeouts)
  end

let resolve_val_iter val_select val_iter =
  match val_iter with Some it -> it | None -> iter_of_select val_select

let solve store ~vars ?(var_select = first_fail) ?(val_select = min_value)
    ?val_iter ?timeout ?node_limit ~on_solution () =
  let stats = fresh_stats () in
  let val_iter = resolve_val_iter val_select val_iter in
  solve_internal store ~vars ~var_select ~val_iter ~timeout ~node_limit
    ~on_node:(fun () -> ())
    ~on_solution stats;
  stats

let find_first store ~vars ?var_select ?val_select ?val_iter ?timeout
    ?node_limit () =
  let snapshot = ref None in
  let on_solution () =
    snapshot := Some (Array.map Var.value_exn vars);
    raise Stop
  in
  let stats =
    solve store ~vars ?var_select ?val_select ?val_iter ?timeout ?node_limit
      ~on_solution ()
  in
  (!snapshot, stats)

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  (* find k with 2^k - 1 = i -> 2^(k-1); else recurse on the prefix *)
  let rec pow2 k = if k = 0 then 1 else 2 * pow2 (k - 1) in
  let rec find k = if pow2 k - 1 > i then k - 1 else find (k + 1) in
  let k = find 1 in
  if pow2 k - 1 = i then pow2 (k - 1) else luby (i - pow2 k + 1)

(* Fisher-Yates over a list. *)
let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let minimize store ~vars ~obj ?(var_select = first_fail)
    ?(val_select = min_value) ?val_iter ?timeout ?node_limit ?incumbent_obj
    ?(on_improve = fun _ -> ()) () =
  let stats = fresh_stats () in
  let val_iter = resolve_val_iter val_select val_iter in
  (* warm start: only assignments strictly better than a caller-supplied
     incumbent are explored (and reported) *)
  let best = ref (Option.value incumbent_obj ~default:max_int) in
  let best_snapshot = ref None in
  let on_node () =
    (* branch & bound: require strict improvement over the incumbent *)
    if !best < max_int then begin
      Store.remove_above store obj (!best - 1);
      Store.propagate store
    end
  in
  let on_solution () =
    let value = Var.lo obj in
    if value < !best then begin
      best := value;
      best_snapshot := Some (value, Array.map Var.value_exn vars);
      if !Obs.enabled then begin
        (* cost-vs-time pair: the instant's timestamp is the time axis *)
        Obs.instant ~cat:"cp"
          ~args:[ ("cost", Trace.I value); ("nodes", Trace.I stats.nodes) ]
          "cp.improvement";
        Metrics.incr (Lazy.force m_improvements)
      end;
      on_improve value
    end
  in
  solve_internal store ~vars ~var_select ~val_iter ~timeout ~node_limit
    ~on_node ~on_solution stats;
  (!best_snapshot, stats)

(* Restart-based minimisation: repeated bounded searches following the
   Luby sequence, each restart shuffling the non-preferred tail of the
   value order to diversify, and re-seeding branch & bound with the
   incumbent. Stops early when a run completes within its budget (the
   incumbent is then proven optimal). *)
let minimize_restarts store ~vars ~obj ?(var_select = first_fail)
    ?(val_select = min_value) ?(base_node_limit = 1000) ?(restarts = 8)
    ?(seed = 0x5eed) ?timeout ?incumbent_obj () =
  let rng = Random.State.make [| seed |] in
  let best = ref None in
  let total = fresh_stats () in
  let deadline = Option.map (fun t -> now () +. t) timeout in
  let time_left () =
    match deadline with
    | None -> None
    | Some d -> Some (Float.max 0.01 (d -. now ()))
  in
  let out_of_time () =
    match deadline with Some d -> now () >= d | None -> false
  in
  (* [proved] records that optimality was established (a run completed
     within budget, or the incumbent-tightening wiped the store);
     [last_timed_out] whether the most recent run hit its own budget.
     The combination decides [total.timed_out]: exhausting the restart
     schedule is only a timeout if the search was actually cut short. *)
  let proved = ref false in
  let last_timed_out = ref false in
  let exception Done in
  (try
     for i = 0 to restarts - 1 do
       if out_of_time () then raise Done;
       (* tighten with the incumbent (ours, or the caller-supplied warm
          start): restarts only look for better *)
       let bound =
         match (!best, incumbent_obj) with
         | Some (v, _), Some b -> Some (min v b)
         | Some (v, _), None -> Some v
         | None, b -> b
       in
       (match bound with
       | Some v -> (
         try
           Store.remove_above store obj (v - 1);
           Store.propagate store
         with Store.Inconsistent _ ->
           (* nothing better than the incumbent exists: optimal *)
           proved := true;
           raise Done)
       | None -> ());
       let val_select_i x =
         let vs = val_select x in
         if i = 0 then vs
         else
           match vs with
           | preferred :: tail -> preferred :: shuffle rng tail
           | [] -> []
       in
       let node_limit = base_node_limit * luby (i + 1) in
       if i > 0 then begin
         Log.debug (fun m ->
             m "restart %d: node_limit=%d incumbent=%s" i node_limit
               (match !best with
               | Some (v, _) -> string_of_int v
               | None -> "none"));
         if !Obs.enabled then begin
           Obs.instant ~cat:"cp"
             ~args:
               [ ("restart", Trace.I i); ("node_limit", Trace.I node_limit) ]
             "cp.restart";
           Metrics.incr (Lazy.force m_restarts)
         end
       end;
       let result, stats =
         minimize store ~vars ~obj ~var_select ~val_select:val_select_i
           ?timeout:(time_left ()) ~node_limit ()
       in
       total.nodes <- total.nodes + stats.nodes;
       total.fails <- total.fails + stats.fails;
       total.backtracks <- total.backtracks + stats.backtracks;
       total.solutions <- total.solutions + stats.solutions;
       total.elapsed <- total.elapsed +. stats.elapsed;
       last_timed_out := stats.timed_out;
       (match result with
       | Some (v, snap) -> (
         match !best with
         | Some (bv, _) when bv <= v -> ()
         | _ -> best := Some (v, snap))
       | None -> ());
       (* a run that finished within its budget proved optimality of the
          incumbent under the current bound *)
       if not stats.timed_out then begin
         proved := true;
         raise Done
       end
     done
   with Done -> ());
  total.timed_out <- (not !proved) && (!last_timed_out || out_of_time ());
  (!best, total)
