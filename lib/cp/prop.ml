(* A propagator is a named closure that narrows variable domains. It
   raises [Store.Inconsistent] (via the store's update functions or
   directly) when it proves the current state has no solution.

   The [scheduled] flag keeps each propagator at most once in the
   propagation queue. [priority] selects the queue: [Cheap] propagators
   (arithmetic, element, ...) drain before any [Expensive] one
   (pack/knapsack) runs, so the costly global constraints see domains
   already at the cheap fixpoint.

   Wake events: a propagator subscribes per variable to the weakest
   event it can exploit. Events are ordered by strength —
   [On_instantiate] (the domain became a singleton) implies [On_bounds]
   (lo or hi moved) implies [On_domain] (any value was removed) — and a
   subscription wakes on its event or any stronger one. *)

type event = On_instantiate | On_bounds | On_domain

type priority = Cheap | Expensive

type t = {
  id : int;
  name : string;
  priority : priority;
  mutable scheduled : bool;
  mutable run : unit -> unit;
}

(* Subscription masks. An update fires [fired_domain], plus
   [fired_bounds] when a bound moved, plus [fired_instantiate] when the
   domain became a singleton; a watcher wakes when its mask intersects
   the fired set. Instantiation implies a bounds move implies a domain
   change, so each subscription needs only its own bit. *)
let fired_instantiate = 1
let fired_bounds = 2
let fired_domain = 4

let mask_of_event = function
  | On_instantiate -> fired_instantiate
  | On_bounds -> fired_bounds
  | On_domain -> fired_domain

let next_id = ref 0

let make ~name ?(priority = Cheap) run =
  incr next_id;
  { id = !next_id; name; priority; scheduled = false; run }

let pp ppf t = Fmt.pf ppf "%s#%d" t.name t.id
