(* The constraint store: owns variables, the backtracking trail and the
   propagation queues.

   Trailing strategy: every domain update pushes the (variable, previous
   domain) pair; [undo_to] pops entries back to a mark. Domains being
   immutable values, restoration is a single field write. Propagators
   with incremental internal state (e.g. Pack's committed bin loads)
   trail individual int-array cells through [save_cell]; the same
   [undo_to] restores them in lockstep with the domains, so propagator
   state never drifts from the search tree.

   Scheduling: two FIFO queues by [Prop.priority]. [propagate] drains
   every Cheap propagator before running one Expensive propagator, then
   returns to the cheap queue — the costly global constraints always see
   domains at the cheap fixpoint. Watchers are woken only when an update
   fires an event they subscribed to (instantiate / bounds / domain). *)

module Obs = Entropy_obs.Obs
module Trace = Entropy_obs.Trace

exception Inconsistent of string

let fail fmt = Fmt.kstr (fun s -> raise (Inconsistent s)) fmt

(* Per-propagator observability counters, populated only while
   [Obs.enabled]: wake events (a watched variable fired a subscribed
   event), runs, and cumulative run time. Keyed by [Prop.id]; aggregated
   by name on export. *)
type prop_stat = {
  ps_name : string;
  mutable wakes : int;
  mutable runs : int;
  mutable time_us : float;
}

type trail_entry =
  | Trail_dom of Var.t * Dom.t       (* variable, previous domain *)
  | Trail_cell of int array * int * int  (* array, index, previous value *)

let dummy_entry = Trail_cell ([||], 0, 0)

type t = {
  mutable vars : Var.t list;       (* newest first *)
  mutable nvars : int;
  mutable trail : trail_entry array;
  mutable trail_len : int;
  queue_cheap : Prop.t Queue.t;
  queue_expensive : Prop.t Queue.t;
  mutable propagations : int;      (* cumulative propagator runs *)
  mutable updates : int;           (* cumulative domain updates *)
  obs_stats : (int, prop_stat) Hashtbl.t;
}

type mark = int

let create () =
  {
    vars = [];
    nvars = 0;
    trail = Array.make 256 dummy_entry;
    trail_len = 0;
    queue_cheap = Queue.create ();
    queue_expensive = Queue.create ();
    propagations = 0;
    updates = 0;
    obs_stats = Hashtbl.create 16;
  }

let vars t = List.rev t.vars
let propagation_count t = t.propagations
let update_count t = t.updates

let prop_stat t (p : Prop.t) =
  match Hashtbl.find_opt t.obs_stats p.Prop.id with
  | Some s -> s
  | None ->
    let s = { ps_name = p.Prop.name; wakes = 0; runs = 0; time_us = 0. } in
    Hashtbl.add t.obs_stats p.Prop.id s;
    s

let prop_stats t =
  let by_name = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ s ->
      let w, r, us =
        Option.value ~default:(0, 0, 0.) (Hashtbl.find_opt by_name s.ps_name)
      in
      Hashtbl.replace by_name s.ps_name
        (w + s.wakes, r + s.runs, us +. s.time_us))
    t.obs_stats;
  Hashtbl.fold (fun name (w, r, us) acc -> (name, w, r, us) :: acc) by_name []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)

let new_var ?(name = "") t ~lo ~hi =
  if lo > hi then
    fail "new_var %s: empty initial domain [%d,%d]"
      (if name = "" then "v" ^ string_of_int t.nvars else name)
      lo hi;
  let v =
    { Var.id = t.nvars; name; dom = Dom.interval lo hi; watchers = [] }
  in
  t.nvars <- t.nvars + 1;
  t.vars <- v :: t.vars;
  v

let new_var_of_values ?name t values =
  let d = Dom.of_list values in
  if Dom.is_empty d then fail "new_var_of_values: empty domain";
  let v = new_var ?name t ~lo:(Dom.lo d) ~hi:(Dom.hi d) in
  v.Var.dom <- d;
  v

let constant t c = new_var ~name:(Printf.sprintf "const%d" c) t ~lo:c ~hi:c

(* -- trail --------------------------------------------------------------- *)

let push_trail t entry =
  if t.trail_len = Array.length t.trail then begin
    let bigger = Array.make (2 * Array.length t.trail) dummy_entry in
    Array.blit t.trail 0 bigger 0 t.trail_len;
    t.trail <- bigger
  end;
  t.trail.(t.trail_len) <- entry;
  t.trail_len <- t.trail_len + 1

let save_cell t arr i = push_trail t (Trail_cell (arr, i, arr.(i)))

let mark t = t.trail_len

let undo_to t m =
  while t.trail_len > m do
    t.trail_len <- t.trail_len - 1;
    match t.trail.(t.trail_len) with
    | Trail_dom (v, old_dom) -> v.Var.dom <- old_dom
    | Trail_cell (arr, i, old) -> arr.(i) <- old
  done

(* -- scheduling and updates ---------------------------------------------- *)

let schedule t (p : Prop.t) =
  if !Obs.enabled then begin
    let s = prop_stat t p in
    s.wakes <- s.wakes + 1
  end;
  if not p.scheduled then begin
    p.scheduled <- true;
    Queue.add p
      (match p.priority with
      | Prop.Cheap -> t.queue_cheap
      | Prop.Expensive -> t.queue_expensive)
  end

let schedule_watchers t (v : Var.t) ~fired =
  List.iter
    (fun (mask, p) -> if mask land fired <> 0 then schedule t p)
    v.watchers

let set_dom t (v : Var.t) d =
  if Dom.is_empty d then begin
    (* wake nobody; the search will undo *)
    fail "%s: domain wiped out" (Var.name v)
  end;
  let old = v.Var.dom in
  if Dom.size d < Dom.size old then begin
    push_trail t (Trail_dom (v, old));
    v.Var.dom <- d;
    t.updates <- t.updates + 1;
    let fired =
      Prop.fired_domain
      lor (if Dom.lo d <> Dom.lo old || Dom.hi d <> Dom.hi old then
             Prop.fired_bounds
           else 0)
      lor (if Dom.is_bound d then Prop.fired_instantiate else 0)
    in
    schedule_watchers t v ~fired
  end

let remove t v x = set_dom t v (Dom.remove x (Var.dom v))
let remove_below t v x = set_dom t v (Dom.remove_below x (Var.dom v))
let remove_above t v x = set_dom t v (Dom.remove_above x (Var.dom v))

let instantiate t v x =
  if not (Var.mem x v) then
    fail "%s: cannot instantiate to %d (not in %a)" (Var.name v) x Dom.pp
      (Var.dom v);
  set_dom t v (Dom.keep_only x (Var.dom v))

(* -- propagation --------------------------------------------------------- *)

let clear_queue t =
  let clear q =
    Queue.iter (fun (p : Prop.t) -> p.scheduled <- false) q;
    Queue.clear q
  in
  clear t.queue_cheap;
  clear t.queue_expensive

let run_one t (p : Prop.t) =
  p.Prop.scheduled <- false;
  t.propagations <- t.propagations + 1;
  if !Obs.enabled then begin
    let s = prop_stat t p in
    s.runs <- s.runs + 1;
    let t0 = Unix.gettimeofday () in
    match p.Prop.run () with
    | () -> s.time_us <- s.time_us +. ((Unix.gettimeofday () -. t0) *. 1e6)
    | exception e ->
      s.time_us <- s.time_us +. ((Unix.gettimeofday () -. t0) *. 1e6);
      raise e
  end
  else p.Prop.run ()

let propagate_plain t =
  try
    let rec loop () =
      if not (Queue.is_empty t.queue_cheap) then begin
        run_one t (Queue.pop t.queue_cheap);
        loop ()
      end
      else if not (Queue.is_empty t.queue_expensive) then begin
        run_one t (Queue.pop t.queue_expensive);
        loop ()
      end
    in
    loop ()
  with Inconsistent _ as e ->
    clear_queue t;
    raise e

(* Traced fixpoint: a [cp.propagate] span carrying the number of
   propagator runs and effective domain updates it triggered. Spans with
   zero runs are skipped (empty-queue calls at every search node would
   drown the ring buffer). *)
let propagate_traced t =
  let t0 = Trace.now_us () in
  let p0 = t.propagations and u0 = t.updates in
  let record raised =
    if t.propagations > p0 || raised then
      Trace.complete ~cat:"cp" ~name:"cp.propagate"
        ~args:
          [
            ("runs", Trace.I (t.propagations - p0));
            ("updates", Trace.I (t.updates - u0));
            ("failed", Trace.B raised);
          ]
        ~ts_us:t0 ~dur_us:(Trace.now_us () -. t0) ()
  in
  match propagate_plain t with
  | () -> record false
  | exception e ->
    record true;
    raise e

let propagate t =
  if !Obs.enabled then propagate_traced t else propagate_plain t

let post_on t (p : Prop.t) ~on =
  List.iter
    (fun (event, vars) -> List.iter (fun v -> Var.watch v ~event p) vars)
    on;
  schedule t p

let post t (p : Prop.t) ~on = post_on t p ~on:[ (Prop.On_domain, on) ]
