(* Finite-domain variables. Domain mutation goes through [Store], which
   handles trailing and propagator scheduling; this module only holds the
   representation and read accessors.

   Watchers carry the event mask they subscribed with (see [Prop.event]):
   the store wakes a watcher only when an update fires an event in its
   mask. *)

type t = {
  id : int;
  name : string;
  mutable dom : Dom.t;
  mutable watchers : (int * Prop.t) list;
}

let id t = t.id

(* Read instrumentation for the analysis sanitizer: when set, every read
   accessor reports the variable it touched (used to check that a
   propagator only reads variables it subscribed to). The production
   cost is one load and one predictable branch per read. *)
let read_hook : (t -> unit) option ref = ref None

let[@inline] note_read t =
  match !read_hook with None -> () | Some f -> f t

(* anonymous variables store [""] and render as "v<id>" on demand, so
   variable creation never formats a string *)
let name t = if t.name = "" then "v" ^ string_of_int t.id else t.name

let dom t =
  note_read t;
  t.dom

let lo t = note_read t; Dom.lo t.dom
let hi t = note_read t; Dom.hi t.dom
let size t = note_read t; Dom.size t.dom
let is_bound t = note_read t; Dom.is_bound t.dom
let mem v t = note_read t; Dom.mem v t.dom

let value_exn t =
  if not (is_bound t) then
    invalid_arg (Printf.sprintf "Var.value_exn: %s not bound" (name t));
  Dom.value_exn t.dom

let watch t ?(event = Prop.On_domain) prop =
  let mask = Prop.mask_of_event event in
  let rec add = function
    | [] -> [ (mask, prop) ]
    | (m, (p : Prop.t)) :: rest when p.id = prop.Prop.id ->
      (m lor mask, p) :: rest
    | w :: rest -> w :: add rest
  in
  t.watchers <- add t.watchers

let pp ppf t = Fmt.pf ppf "%s=%a" (name t) Dom.pp t.dom
