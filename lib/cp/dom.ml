(* Finite integer domains.

   A domain is an immutable set of integers. Two representations are used:
   - a contiguous interval [lo, hi] (bits = None);
   - an interval with holes, backed by a copy-on-write bitset of 62-bit
     words whose bit i (word i/62, position i mod 62) represents the
     value [off + i].

   The word array is shared between domains whenever possible: operations
   that only tighten a bound ([remove] of a bound value, [remove_below],
   [remove_above]) reuse the array unchanged and merely shrink the [lo,hi]
   window. Consequently bits *outside* the window are stale (possibly set)
   and every read clamps to the window first; bits inside the window are
   always exact.

   Domains wider than [max_enumerated_width] stay interval-only: removing
   an interior value of such a domain is a sound no-op (the domain is an
   over-approximation, propagators only lose pruning strength, never
   soundness). This matters only for objective-like variables whose
   domains are tightened exclusively through their bounds. *)

let max_enumerated_width = 1 lsl 16

type t = {
  lo : int;
  hi : int;
  size : int;
  off : int;              (* value of bit 0 when a bitset is present *)
  bits : int array option;
}

let lo t = t.lo
let hi t = t.hi
let size t = t.size

let is_empty t = t.size = 0
let is_bound t = t.size = 1

let empty = { lo = 1; hi = 0; size = 0; off = 0; bits = None }

let interval lo hi =
  if lo > hi then empty
  else { lo; hi; size = hi - lo + 1; off = lo; bits = None }

let singleton v = interval v v

(* -- word-level bitset helpers ------------------------------------------- *)

let word_bits = 62

(* max_int = 2^62 - 1: exactly bits 0..61 set, i.e. a full word. *)
let full_word = max_int

(* bits p..61 *)
let mask_from p = full_word - ((1 lsl p) - 1)

(* bits 0..p (p <= 61; p = 61 wraps through min_int - 1 = max_int) *)
let mask_upto p = (1 lsl (p + 1)) - 1

(* SWAR popcount of a 62-bit word. All constants fit in OCaml's 63-bit
   native ints; the final multiply's byte 7 (bits 56..62 after lsr 56)
   carries the total, which is <= 62. *)
let popcount x =
  let x = x - ((x lsr 1) land 0x1555_5555_5555_5555) in
  let x = (x land 0x3333_3333_3333_3333) + ((x lsr 2) land 0x3333_3333_3333_3333) in
  let x = (x + (x lsr 4)) land 0x0F0F_0F0F_0F0F_0F0F in
  (x * 0x0101_0101_0101_0101) lsr 56

(* index of the lowest set bit (x <> 0) *)
let ctz x = popcount ((x land -x) - 1)

(* index of the highest set bit (x <> 0) *)
let highest_bit x =
  let r = ref 0 and x = ref x in
  if !x lsr 32 <> 0 then begin r := 32; x := !x lsr 32 end;
  if !x lsr 16 <> 0 then begin r := !r + 16; x := !x lsr 16 end;
  if !x lsr 8 <> 0 then begin r := !r + 8; x := !x lsr 8 end;
  if !x lsr 4 <> 0 then begin r := !r + 4; x := !x lsr 4 end;
  if !x lsr 2 <> 0 then begin r := !r + 2; x := !x lsr 2 end;
  if !x lsr 1 <> 0 then incr r;
  !r

let bit_get b off v =
  let i = v - off in
  b.(i / word_bits) lsr (i mod word_bits) land 1 = 1

let bit_clear b off v =
  let i = v - off in
  let w = i / word_bits in
  b.(w) <- b.(w) land lnot (1 lsl (i mod word_bits))

let bit_set b off v =
  let i = v - off in
  let w = i / word_bits in
  b.(w) <- b.(w) lor (1 lsl (i mod word_bits))

(* Smallest present value in [v, hi], or -1. [v >= off]; stale bits above
   [hi] in the last word are rejected by the final comparison (ctz returns
   the lowest candidate, so a legitimate value is never shadowed). *)
let scan_up b off hi v =
  if v > hi then -1
  else begin
    let i = v - off in
    let w = i / word_bits in
    let nw = ((hi - off) / word_bits) + 1 in
    let first = b.(w) land mask_from (i mod word_bits) in
    let r =
      if first <> 0 then off + (w * word_bits) + ctz first
      else begin
        let w = ref (w + 1) in
        while !w < nw && b.(!w) = 0 do incr w done;
        if !w >= nw then -1 else off + (!w * word_bits) + ctz b.(!w)
      end
    in
    if r >= 0 && r <= hi then r else -1
  end

(* Largest present value in [lo, v], or -1. Symmetric to [scan_up]; stale
   bits below [lo] in the first word are rejected by the final check. *)
let scan_down b off lo v =
  if v < lo then -1
  else begin
    let i = v - off in
    let w = i / word_bits in
    let wlo = (lo - off) / word_bits in
    let first = b.(w) land mask_upto (i mod word_bits) in
    let r =
      if first <> 0 then off + (w * word_bits) + highest_bit first
      else begin
        let w = ref (w - 1) in
        while !w >= wlo && b.(!w) = 0 do decr w done;
        if !w < wlo then -1 else off + (!w * word_bits) + highest_bit b.(!w)
      end
    in
    if r >= lo then r else -1
  end

(* Number of present values in [a, z] (both within the window). *)
let count_range b off a z =
  if a > z then 0
  else begin
    let i = a - off and j = z - off in
    let wi = i / word_bits and wj = j / word_bits in
    if wi = wj then
      popcount (b.(wi) land mask_from (i mod word_bits)
                land mask_upto (j mod word_bits))
    else begin
      let c = ref (popcount (b.(wi) land mask_from (i mod word_bits))) in
      for w = wi + 1 to wj - 1 do
        c := !c + popcount b.(w)
      done;
      !c + popcount (b.(wj) land mask_upto (j mod word_bits))
    end
  end

(* Fresh all-ones bitset covering [lo, hi] (bit 0 = lo). Trailing stale
   set bits beyond [hi] in the last word are harmless: reads clamp. *)
let materialize_interval lo hi =
  let width = hi - lo + 1 in
  Array.make ((width + word_bits - 1) / word_bits) full_word

let enumerable t =
  match t.bits with
  | Some _ -> true
  | None -> t.hi - t.lo + 1 <= max_enumerated_width

let mem v t =
  if v < t.lo || v > t.hi then false
  else
    match t.bits with
    | None -> true
    | Some b -> bit_get b t.off v

let value_exn t =
  if t.size <> 1 then invalid_arg "Dom.value_exn: domain not bound";
  t.lo

let next_value v t =
  let v = max v t.lo in
  if v > t.hi then None
  else
    match t.bits with
    | None -> Some v
    | Some b ->
      let r = scan_up b t.off t.hi v in
      if r < 0 then None else Some r

let prev_value v t =
  let v = min v t.hi in
  if v < t.lo then None
  else
    match t.bits with
    | None -> Some v
    | Some b ->
      let r = scan_down b t.off t.lo v in
      if r < 0 then None else Some r

let remove v t =
  if v < t.lo || v > t.hi then t
  else
    match t.bits with
    | None ->
      (* interval: bound removals just move the window (the word array
         stays absent); interior removals materialize the bits *)
      if v = t.lo then
        if t.size = 1 then empty
        else { t with lo = v + 1; size = t.size - 1 }
      else if v = t.hi then { t with hi = v - 1; size = t.size - 1 }
      else if not (enumerable t) then t (* sound over-approximation *)
      else
        let b = materialize_interval t.lo t.hi in
        bit_clear b t.lo v;
        { t with size = t.size - 1; off = t.lo; bits = Some b }
    | Some b ->
      if not (bit_get b t.off v) then t
      else if t.size = 1 then empty
      else if v = t.lo then
        (* shrink from below; the stale bit at [v] falls outside the
           window, so the word array is shared unchanged *)
        { t with lo = scan_up b t.off t.hi (v + 1); size = t.size - 1 }
      else if v = t.hi then
        { t with hi = scan_down b t.off t.lo (v - 1); size = t.size - 1 }
      else if not (enumerable t) then t
      else begin
        (* interior removal: lo, hi and off are unchanged, only one bit
           and the cardinality move — no rescan needed *)
        let b = Array.copy b in
        bit_clear b t.off v;
        { t with size = t.size - 1; bits = Some b }
      end

let remove_below v t =
  if v <= t.lo then t
  else if v > t.hi then empty
  else
    match t.bits with
    | None -> { t with lo = v; size = t.hi - v + 1 }
    | Some b ->
      (* only the removed range [lo, v-1] is scanned; the kept side is
         untouched and the word array is shared *)
      let size = t.size - count_range b t.off t.lo (v - 1) in
      if size = 0 then empty
      else
        let lo = scan_up b t.off t.hi v in
        { t with lo; size }

let remove_above v t =
  if v >= t.hi then t
  else if v < t.lo then empty
  else
    match t.bits with
    | None -> { t with hi = v; size = v - t.lo + 1 }
    | Some b ->
      let size = t.size - count_range b t.off (v + 1) t.hi in
      if size = 0 then empty
      else
        let hi = scan_down b t.off t.lo v in
        { t with hi; size }

let keep_only v t = if mem v t then singleton v else empty

let of_list vs =
  match List.sort_uniq Int.compare vs with
  | [] -> empty
  | [ v ] -> singleton v
  | lo :: _ as vs ->
    let hi = List.fold_left max lo vs in
    if hi - lo + 1 > max_enumerated_width then
      invalid_arg "Dom.of_list: range too wide to enumerate";
    let width = hi - lo + 1 in
    let b = Array.make ((width + word_bits - 1) / word_bits) 0 in
    List.iter (fun v -> bit_set b lo v) vs;
    { lo; hi; size = List.length vs; off = lo; bits = Some b }

let fold f acc t =
  if not (enumerable t) then invalid_arg "Dom.fold: domain not enumerable"
  else
    match t.bits with
    | None ->
      let acc = ref acc in
      for v = t.lo to t.hi do
        acc := f !acc v
      done;
      !acc
    | Some b ->
      let rec go acc v =
        if v > t.hi then acc
        else
          let v = scan_up b t.off t.hi v in
          if v < 0 then acc else go (f acc v) (v + 1)
      in
      go acc t.lo

let iter f t = fold (fun () v -> f v) () t

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)

(* Set equality, independent of the representation (shared word arrays,
   stale bits outside the window, interval vs materialized bitset). *)
let equal a b =
  a.size = b.size && a.lo = b.lo && a.hi = b.hi
  && (a.size = 0
     || a.size = a.hi - a.lo + 1 (* both contiguous *)
     ||
     let rec go v =
       match (next_value v a, next_value v b) with
       | None, None -> true
       | Some x, Some y -> x = y && go (x + 1)
       | Some _, None | None, Some _ -> false
     in
     go a.lo)

let pp ppf t =
  if is_empty t then Fmt.string ppf "{}"
  else if t.size = 1 then Fmt.pf ppf "{%d}" t.lo
  else
    match t.bits with
    | None -> Fmt.pf ppf "[%d..%d]" t.lo t.hi
    | Some _ -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (to_list t)
