(** Immutable finite integer domains.

    Small domains (width up to {!max_enumerated_width}) support arbitrary
    value removal via a copy-on-write bitset. Wider domains are kept as
    pure intervals: removing an {e interior} value of such a domain is a
    sound no-op (the domain over-approximates the true set; propagators
    may lose pruning strength but never soundness). Bound removals are
    always exact. *)

type t

val max_enumerated_width : int
(** Widest domain for which value-level (holes) representation is used. *)

val empty : t
val interval : int -> int -> t
(** [interval lo hi] is [{lo, .., hi}]; empty when [lo > hi]. *)

val singleton : int -> t

val of_list : int list -> t
(** Domain holding exactly the given values. Raises [Invalid_argument]
    when the value range is too wide to enumerate. *)

val lo : t -> int
val hi : t -> int
val size : t -> int
val is_empty : t -> bool
val is_bound : t -> bool

val mem : int -> t -> bool

val value_exn : t -> int
(** The value of a bound domain. Raises [Invalid_argument] otherwise. *)

val next_value : int -> t -> int option
(** [next_value v t] is the smallest domain value [>= v], if any. *)

val prev_value : int -> t -> int option
(** [prev_value v t] is the largest domain value [<= v], if any. *)

val remove : int -> t -> t
val remove_below : int -> t -> t
(** [remove_below v t] keeps values [>= v]. *)

val remove_above : int -> t -> t
(** [remove_above v t] keeps values [<= v]. *)

val keep_only : int -> t -> t
(** [keep_only v t] is [{v}] when [v] is in [t], [empty] otherwise. *)

val enumerable : t -> bool
(** Whether values can be iterated ({!fold}, {!iter}, {!to_list}). *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val iter : (int -> unit) -> t -> unit
val to_list : t -> int list

val equal : t -> t -> bool
(** Set equality, independent of the internal representation. *)

val pp : Format.formatter -> t -> unit
