(** Depth-first search, enumeration and branch-and-bound minimisation. *)

type stats = {
  mutable nodes : int;
  mutable fails : int;
  mutable backtracks : int;
      (** undone value attempts (both after exhausting a subtree and on
          a propagation failure) *)
  mutable solutions : int;
  mutable elapsed : float;        (** seconds *)
  mutable timed_out : bool;
}

val pp_stats : Format.formatter -> stats -> unit
val fresh_stats : unit -> stats

type var_select = Var.t array -> Var.t option
(** Picks the next unbound variable to branch on ([None] = all bound). *)

type val_select = Var.t -> int list
(** Candidate values, in the order they should be tried. *)

type val_iter = Var.t -> (int -> unit) -> unit
(** Allocation-free value ordering: applies the callback to each
    candidate value in order. When supplied to the search entry points
    it takes precedence over [val_select] on the hot path (the
    list-based selector is then only a fallback). The iterator is
    called on the domain as it stands at the node; it must not rely on
    the domain staying unchanged across callback invocations — the
    search undoes its trail between values, so the domain seen by the
    iterator is restored before each subsequent callback. *)

exception Stop
(** Raise from [on_solution] to stop the search. *)

val in_order : var_select
val first_fail : var_select
(** Smallest current domain first (Haralick & Elliott). *)

val by_key : (Var.t -> int) -> var_select
(** Unbound variable minimising the key. Use a negated key for
    "largest demand first" orderings. *)

val min_value : val_select
val max_value : val_select

val prefer : (Var.t -> int option) -> val_select
(** [prefer f] tries [f x] first when still in the domain — e.g. a VM's
    current node — then the remaining values in increasing order. *)

val solve :
  Store.t -> vars:Var.t array -> ?var_select:var_select ->
  ?val_select:val_select -> ?val_iter:val_iter -> ?timeout:float ->
  ?node_limit:int -> on_solution:(unit -> unit) -> unit -> stats
(** Enumerate solutions (assignments of [vars]); [on_solution] runs with
    the store instantiated and may read any variable. The store is
    restored to its root state before returning. *)

val find_first :
  Store.t -> vars:Var.t array -> ?var_select:var_select ->
  ?val_select:val_select -> ?val_iter:val_iter -> ?timeout:float ->
  ?node_limit:int -> unit -> int array option * stats
(** First solution as a value snapshot of [vars]. *)

val minimize :
  Store.t -> vars:Var.t array -> obj:Var.t -> ?var_select:var_select ->
  ?val_select:val_select -> ?val_iter:val_iter -> ?timeout:float ->
  ?node_limit:int -> ?incumbent_obj:int -> ?on_improve:(int -> unit) ->
  unit -> (int * int array) option * stats
(** Branch & bound on [obj]. Returns the best objective value with the
    snapshot of [vars] at that solution (the incumbent at timeout if the
    search did not complete). [incumbent_obj] warm-starts the bound: only
    assignments with [obj] strictly below it are explored or returned. *)

val luby : int -> int
(** The Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 ... *)

val minimize_restarts :
  Store.t -> vars:Var.t array -> obj:Var.t -> ?var_select:var_select ->
  ?val_select:val_select -> ?base_node_limit:int -> ?restarts:int ->
  ?seed:int -> ?timeout:float -> ?incumbent_obj:int -> unit ->
  (int * int array) option * stats
(** Restart-based branch & bound: Luby-bounded runs, shuffled value-order
    tails after the first run, incumbent carried across restarts. Note
    the store's objective domain is tightened in place across runs (use
    a dedicated store). Stops early when a run completes (optimality
    proven). [timed_out] in the returned stats is set only when the
    search was actually cut short: the last run hit its node budget or
    the deadline expired before optimality was proven. *)
