(* y = max(xs): bounds propagation, with the classic refinement that
   when a single variable can still reach y's lower bound it is forced
   up to it. Useful for makespan-style objectives. *)

let post store xs y =
  if xs = [] then invalid_arg "Maxvar.post: empty variable list";
  let p = Prop.make ~name:"max" (fun () -> ()) in
  p.Prop.run <-
    (fun () ->
      let max_hi = List.fold_left (fun acc x -> max acc (Var.hi x)) min_int xs in
      let max_lo = List.fold_left (fun acc x -> max acc (Var.lo x)) min_int xs in
      Store.remove_above store y max_hi;
      Store.remove_below store y max_lo;
      (* no x may exceed y *)
      List.iter (fun x -> Store.remove_above store x (Var.hi y)) xs;
      (* support for y's lower bound: variables that can still reach it *)
      let reachers = List.filter (fun x -> Var.hi x >= Var.lo y) xs in
      match reachers with
      | [] -> Store.fail "max: no variable can reach the lower bound %d" (Var.lo y)
      | [ only ] -> Store.remove_below store only (Var.lo y)
      | _ -> ());
  Store.post_on store p ~on:[ (Prop.On_bounds, y :: xs) ]
