(* Counting constraints over the number of variables taking a value:
   at_most / at_least / exactly. Used for node quotas (at most k VMs on
   a node) — a light form of the global cardinality constraint. *)

let occurrences vars value =
  let bound = ref 0 and candidates = ref 0 in
  Array.iter
    (fun x ->
      if Var.is_bound x then begin
        if Var.value_exn x = value then incr bound
      end
      else if Var.mem value x then incr candidates)
    vars;
  (!bound, !candidates)

let at_most store ?(name = "count_at_most") vars ~value ~count =
  if count < 0 then invalid_arg "Count.at_most: negative count";
  let p = Prop.make ~name (fun () -> ()) in
  p.Prop.run <-
    (fun () ->
      let bound, _ = occurrences vars value in
      if bound > count then
        Store.fail "%s: %d variables already equal %d (max %d)" name bound
          value count;
      if bound = count then
        (* saturated: the value leaves every unbound domain *)
        Array.iter
          (fun x -> if not (Var.is_bound x) then Store.remove store x value)
          vars);
  (* the bound count only changes when a variable becomes instantiated *)
  Store.post_on store p ~on:[ (Prop.On_instantiate, Array.to_list vars) ]

let at_least store ?(name = "count_at_least") vars ~value ~count =
  if count < 0 then invalid_arg "Count.at_least: negative count";
  let p = Prop.make ~name (fun () -> ()) in
  p.Prop.run <-
    (fun () ->
      let bound, candidates = occurrences vars value in
      if bound + candidates < count then
        Store.fail "%s: at most %d variables can equal %d (need %d)" name
          (bound + candidates) value count;
      if bound + candidates = count then
        (* every candidate is forced *)
        Array.iter
          (fun x ->
            if (not (Var.is_bound x)) && Var.mem value x then
              Store.instantiate store x value)
          vars);
  Store.post store p ~on:(Array.to_list vars)

let exactly store ?(name = "count_exactly") vars ~value ~count =
  at_most store ~name:(name ^ "/ub") vars ~value ~count;
  at_least store ~name:(name ^ "/lb") vars ~value ~count
