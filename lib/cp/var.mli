(** Finite-domain integer variables.

    All domain {e mutation} must go through {!Store} (for trailing and
    propagator scheduling); this interface exposes only reads, plus
    {!watch} used by constraint implementations. *)

type t = {
  id : int;
  name : string;  (** [""] for anonymous variables; read via {!name} *)
  mutable dom : Dom.t;
  mutable watchers : (int * Prop.t) list;
      (** (event mask, propagator); see {!Prop.mask_of_event} *)
}

val id : t -> int

(** Display name; anonymous variables render as ["v<id>"]. *)
val name : t -> string
val dom : t -> Dom.t
val lo : t -> int
val hi : t -> int
val size : t -> int
val is_bound : t -> bool
val mem : int -> t -> bool

val value_exn : t -> int
(** Value of a bound variable. Raises [Invalid_argument] otherwise. *)

val watch : t -> ?event:Prop.event -> Prop.t -> unit
(** Subscribe a propagator to this variable's changes, waking it on
    [event] (default {!Prop.On_domain}: any change) or stronger.
    Subscribing the same propagator twice merges the event masks. *)

val read_hook : (t -> unit) option ref
(** Instrumentation point used by the analysis sanitizer: when set, every
    read accessor ({!dom}, {!lo}, {!hi}, {!size}, {!is_bound}, {!mem},
    {!value_exn}) calls the hook with the variable being read. Leave
    [None] in production (the default); the overhead is then a single
    predictable branch per read. *)

val pp : Format.formatter -> t -> unit
