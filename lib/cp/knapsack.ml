(* Knapsack (subset-sum) constraint with dynamic-programming propagation,
   after Trick's "A dynamic programming approach for consistency and
   propagation for knapsack constraints" (CPAIOR'01), cited by the paper
   for the multiple-knapsack viability check.

   Constraint:  load = sum_i size_i * sel_i   with  sel_i in {0,1}.

   Propagation builds the set of reachable sums with a forward DP over
   the items (respecting already-bound selectors), intersects it with the
   load variable's domain, and then detects items that are *forced*
   (every surviving sum uses them) or *forbidden* (no surviving sum uses
   them) with a forward/backward reachability product. *)

type t = { sizes : int array; selectors : Var.t array; load : Var.t }

let bitlen cap = cap + 1

(* forward.(k) = set of sums reachable using items 0..k-1 *)
let forward_tables sizes selectors cap =
  let n = Array.length sizes in
  let tables = Array.init (n + 1) (fun _ -> Bytes.make ((bitlen cap + 7) / 8) '\000') in
  let set b i =
    let byte = Char.code (Bytes.get b (i lsr 3)) in
    Bytes.set b (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))))
  in
  let get b i =
    Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0
  in
  set tables.(0) 0;
  for k = 0 to n - 1 do
    let may_skip = Var.mem 0 selectors.(k) in
    let may_take = Var.mem 1 selectors.(k) in
    for s = 0 to cap do
      if get tables.(k) s then begin
        if may_skip then set tables.(k + 1) s;
        if may_take && s + sizes.(k) <= cap then
          set tables.(k + 1) (s + sizes.(k))
      end
    done
  done;
  (tables, get)

let post store ~sizes ~selectors ~load =
  let n = Array.length sizes in
  if Array.length selectors <> n then
    invalid_arg "Knapsack.post: arity mismatch";
  Array.iter (fun s -> if s < 0 then invalid_arg "Knapsack.post: negative size") sizes;
  let p = Prop.make ~name:"knapsack" ~priority:Prop.Expensive (fun () -> ()) in
  p.Prop.run <-
    (fun () ->
      Array.iter
        (fun sel ->
          Store.remove_below store sel 0;
          Store.remove_above store sel 1)
        selectors;
      Store.remove_below store load 0;
      let cap = Var.hi load in
      let fwd, get = forward_tables sizes selectors cap in
      (* backward.(k) = set of residual sums completable with items k..n-1
         down to a sum accepted by the load variable *)
      let bwd =
        Array.init (n + 1) (fun _ -> Bytes.make ((bitlen cap + 7) / 8) '\000')
      in
      let set b i =
        let byte = Char.code (Bytes.get b (i lsr 3)) in
        Bytes.set b (i lsr 3) (Char.chr (byte lor (1 lsl (i land 7))))
      in
      for s = 0 to cap do
        if get fwd.(n) s && Var.mem s load then set bwd.(n) s
      done;
      for k = n - 1 downto 0 do
        let may_skip = Var.mem 0 selectors.(k) in
        let may_take = Var.mem 1 selectors.(k) in
        for s = 0 to cap do
          if get fwd.(k) s then begin
            if may_skip && get bwd.(k + 1) s then set bwd.(k) s;
            if
              may_take && s + sizes.(k) <= cap
              && get bwd.(k + 1) (s + sizes.(k))
            then set bwd.(k) s
          end
        done
      done;
      (* feasible load values are exactly the sums in bwd.(n) *)
      let lo_reach = ref (-1) and hi_reach = ref (-1) in
      for s = 0 to cap do
        if get bwd.(n) s then begin
          if !lo_reach < 0 then lo_reach := s;
          hi_reach := s
        end
      done;
      if !lo_reach < 0 then Store.fail "knapsack: no reachable load";
      Store.remove_below store load !lo_reach;
      Store.remove_above store load !hi_reach;
      if Dom.enumerable (Var.dom load) then
        Dom.iter
          (fun s ->
            if s > cap || not (get bwd.(n) s) then Store.remove store load s)
          (Var.dom load);
      (* forced / forbidden items *)
      for k = 0 to n - 1 do
        if not (Var.is_bound selectors.(k)) then begin
          let can_skip = ref false and can_take = ref false in
          for s = 0 to cap do
            if get fwd.(k) s then begin
              if get bwd.(k + 1) s then can_skip := true;
              if s + sizes.(k) <= cap && get bwd.(k + 1) (s + sizes.(k))
              then can_take := true
            end
          done;
          match (!can_skip, !can_take) with
          | false, false -> Store.fail "knapsack: item %d unusable" k
          | true, false -> Store.instantiate store selectors.(k) 0
          | false, true -> Store.instantiate store selectors.(k) 1
          | true, true -> ()
        end
      done);
  (* selectors are 0/1: any domain change is an instantiation; the load
     variable matters at the value level (DP intersects its domain) *)
  Store.post_on store p
    ~on:
      [ (Prop.On_instantiate, Array.to_list selectors);
        (Prop.On_domain, [ load ]) ];
  { sizes; selectors; load }
