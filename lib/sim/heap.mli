(** Binary min-heap with FIFO tie-breaking on equal priorities.

    Backed by parallel arrays (unboxed float priorities); {!push},
    {!top_prio} and {!pop_top} allocate nothing, which keeps the
    per-event cost of the simulation engine flat. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> 'a -> unit

val top_prio : 'a t -> float
(** Priority of the smallest entry. Undefined when the heap is empty —
    callers must check {!is_empty} first. *)

val pop_top : 'a t -> 'a
(** Remove and return the smallest entry (earliest inserted among
    ties). Undefined when the heap is empty. *)

val pop : 'a t -> (float * 'a) option
(** Option-returning convenience over {!top_prio} + {!pop_top}. *)

val tied_count : 'a t -> int
(** Entries whose priority equals {!top_prio} (0 on an empty heap).
    O(length) — schedule-hook support, not for the hot path. *)

val pop_tied : 'a t -> int -> 'a
(** Remove and return the [k]-th entry (in insertion order) among those
    tied at the minimum priority; out-of-range [k] falls back to the
    FIFO choice ([pop_top]). Raises [Invalid_argument] on an empty
    heap. O(length). *)
