(* The simulated cluster: node and VM entities, workload progress and
   contention.

   Execution model:
   - a vjob is *launched* when all of its VMs are Running for the first
     time (the paper starts the embedded application then);
   - a launched, running VM executes its phase program: Compute phases
     progress with the CPU share the node can give (full speed needs an
     entire processing unit), Idle phases progress with wall time;
   - a suspended VM is frozen (no progress at all);
   - context-switch operations touching a node decelerate its busy VMs
     (factor 1.3 local / 1.5 remote, section 2.3);
   - when every VM of a vjob exhausts its program the vjob is complete
     and its owner signals Entropy (the stop happens at the next loop
     iteration).

   Rates change only at discrete events (action start/end, phase end,
   launch); the cluster re-synchronises progress and re-schedules phase
   completions at each such event. Stale completion events are detected
   with per-VM epochs. *)

(* capture the simulator's own log source before [open Entropy_core]
   shadows it with the core's *)
module Sim_log = Log

open Entropy_core
module Program = Vworkload.Program

type vm_rt = {
  vm : Vm.t;
  mutable phases : Program.t;   (* remaining program, head = current *)
  mutable launched : bool;
  mutable finished : bool;
  mutable last_sync : float;
  mutable rate : float;         (* current phase progress per wall second *)
  mutable epoch : int;
}

type t = {
  engine : Engine.t;
  params : Perf_model.params;
  mutable config : Configuration.t;
  rts : vm_rt array;
  vjobs : Vjob.t array;
  programs : Vm.id -> Program.t;  (* original programs, for resubmission *)
  local_ops : int array;        (* per-node running local operations *)
  remote_ops : int array;
  totals : int array;           (* recompute scratch: per-node demand *)
  alive : bool array;           (* per-node; false after a crash *)
  storage : Storage.t option;   (* NFS bandwidth sharing, when modelled *)
  completions : (Vjob.id, float) Hashtbl.t;
  mutable on_change : unit -> unit;
}

let storage t = t.storage

let engine t = t.engine
let params t = t.params
let config t = t.config
let now t = Engine.now t.engine
let vjobs t = Array.to_list t.vjobs

let on_change t f = t.on_change <- f

(* -- demand --------------------------------------------------------------- *)

(* What the VM asks for (hundredths of a core). Defined for every
   non-terminated VM — the decision module also needs the demand a
   sleeping or waiting VM would have if running. *)
let vm_demand_rt rt =
  if rt.finished then Program.idle_demand
  else if not rt.launched then Program.idle_demand
  else Program.demand rt.phases

let vm_demand t vm_id = vm_demand_rt t.rts.(vm_id)

let demand t =
  Demand.of_fn ~vm_count:(Array.length t.rts) (fun vm_id ->
      match Configuration.state t.config vm_id with
      | Configuration.Terminated -> 0
      | Configuration.Running _ | Configuration.Sleeping _
      | Configuration.Sleeping_ram _ | Configuration.Waiting ->
        vm_demand t vm_id)

(* Monitoring reading: same vector, as a raw array. *)
let cpu_readings t =
  Array.init (Array.length t.rts) (fun vm_id ->
      match Configuration.state t.config vm_id with
      | Configuration.Terminated -> 0
      | _ -> vm_demand t vm_id)

(* A node is busy when it hosts a launched running VM computing at full
   speed (other than [except]). *)
let busy ?except t node_id =
  List.exists
    (fun vm_id ->
      (match except with Some e -> vm_id <> e | None -> true)
      &&
      let rt = t.rts.(vm_id) in
      rt.launched && (not rt.finished)
      && match rt.phases with Program.Compute _ :: _ -> true | _ -> false)
    (Configuration.running_on t.config node_id)

(* -- contention ------------------------------------------------------------ *)

let node_decel t node_id =
  if t.remote_ops.(node_id) > 0 then t.params.Perf_model.decel_remote
  else if t.local_ops.(node_id) > 0 then t.params.Perf_model.decel_local
  else 1.

let register_op t ~nodes ~local =
  List.iter
    (fun n ->
      if local then t.local_ops.(n) <- t.local_ops.(n) + 1
      else t.remote_ops.(n) <- t.remote_ops.(n) + 1)
    nodes

let unregister_op t ~nodes ~local =
  List.iter
    (fun n ->
      if local then t.local_ops.(n) <- t.local_ops.(n) - 1
      else t.remote_ops.(n) <- t.remote_ops.(n) - 1)
    nodes

(* -- progress -------------------------------------------------------------- *)

let sync_vm t rt =
  let dt = now t -. rt.last_sync in
  if dt > 0. && rt.rate > 0. then begin
    (match rt.phases with
    | Program.Compute w :: rest ->
      rt.phases <- Program.Compute (w -. (rt.rate *. dt)) :: rest
    | Program.Idle d :: rest ->
      rt.phases <- Program.Idle (d -. (rt.rate *. dt)) :: rest
    | [] -> ())
  end;
  rt.last_sync <- now t

let vjob_of_vm t vm_id =
  let found = ref None in
  Array.iter
    (fun vj -> if List.mem vm_id (Vjob.vms vj) then found := Some vj)
    t.vjobs;
  !found

let check_vjob_completion t rt =
  match vjob_of_vm t rt.vm.Vm.id with
  | None -> ()
  | Some vj ->
    let all_done =
      List.for_all (fun vm_id -> t.rts.(vm_id).finished) (Vjob.vms vj)
    in
    if all_done && not (Hashtbl.mem t.completions (Vjob.id vj)) then
      Hashtbl.replace t.completions (Vjob.id vj) (now t)

let completions t =
  Hashtbl.fold (fun id time acc -> (id, time) :: acc) t.completions []
  |> List.sort compare

let completed t vjob = Hashtbl.mem t.completions (Vjob.id vjob)

let rec advance_phase t vm_id epoch () =
  let rt = t.rts.(vm_id) in
  if rt.epoch = epoch && not rt.finished then begin
    sync_vm t rt;
    (match rt.phases with
    | [] -> ()
    | _ :: rest -> rt.phases <- Program.normalize rest);
    if Program.is_empty rt.phases then begin
      rt.finished <- true;
      check_vjob_completion t rt
    end;
    (* demand changed: every node sharing resources with this VM is
       affected, recompute globally (cheap at our scales) *)
    recompute t
  end

(* Set a VM's progress rate and reschedule its phase-completion event. *)
and set_rate t vm_id rt rate =
  rt.rate <- rate;
  if rate > 0. then begin
    let remaining =
      match rt.phases with
      | Program.Compute w :: _ -> w
      | Program.Idle d :: _ -> d
      | [] -> 0.
    in
    let delay = if remaining > 0. then remaining /. rate else 0. in
    ignore (Engine.schedule_after t.engine ~delay (advance_phase t vm_id rt.epoch))
  end

(* Recompute every running VM's rate and reschedule its phase end. *)
and recompute t =
  let nvm = Array.length t.rts in
  (* first synchronise all progress at the current instant *)
  for vm_id = 0 to nvm - 1 do
    sync_vm t t.rts.(vm_id)
  done;
  (* per-node demand totals, into the preallocated scratch array *)
  let totals = t.totals in
  Array.fill totals 0 (Array.length totals) 0;
  for vm_id = 0 to nvm - 1 do
    match Configuration.state t.config vm_id with
    | Configuration.Running node -> totals.(node) <- totals.(node) + vm_demand t vm_id
    | _ -> ()
  done;
  for vm_id = 0 to nvm - 1 do
    let rt = t.rts.(vm_id) in
    rt.epoch <- rt.epoch + 1;
    if rt.finished || not rt.launched then rt.rate <- 0.
    else
      match Configuration.state t.config vm_id with
      | Configuration.Running node -> (
        match rt.phases with
        | Program.Idle _ :: _ -> set_rate t vm_id rt 1.
        | Program.Compute _ :: _ ->
          let cap = float_of_int (Node.cpu_capacity (Configuration.node t.config node)) in
          let total = float_of_int (max totals.(node) 1) in
          let scale = Float.min 1. (cap /. total) in
          let alloc =
            float_of_int (vm_demand t vm_id) *. scale /. 100.
          in
          let rate = alloc /. node_decel t node in
          set_rate t vm_id rt rate
        | [] -> rt.rate <- 0.)
      | Configuration.Waiting | Configuration.Sleeping _
      | Configuration.Sleeping_ram _ | Configuration.Terminated ->
        rt.rate <- 0.
  done;
  t.on_change ()

(* Launch the vjobs whose VMs are all running for the first time. *)
let check_launches t =
  Array.iter
    (fun vj ->
      let vms = Vjob.vms vj in
      let all_running =
        List.for_all
          (fun vm_id ->
            match Configuration.state t.config vm_id with
            | Configuration.Running _ -> true
            | _ -> false)
          vms
      in
      let any_unlaunched =
        List.exists (fun vm_id -> not t.rts.(vm_id).launched) vms
      in
      if all_running && any_unlaunched then
        List.iter
          (fun vm_id ->
            let rt = t.rts.(vm_id) in
            if not rt.launched then begin
              rt.launched <- true;
              rt.last_sync <- now t;
              if Program.is_empty rt.phases then begin
                rt.finished <- true;
                check_vjob_completion t rt
              end
            end)
          vms)
    t.vjobs

let set_config t config =
  t.config <- config;
  check_launches t;
  recompute t

(* -- node crashes ----------------------------------------------------------- *)

let node_alive t node_id = t.alive.(node_id)

(* A permanent node crash: the node keeps its identity but loses all
   capacity. Every incomplete vjob with a VM running on the node — or an
   image stored there — loses its work: all of its VMs go back to
   Waiting with their original program, so the next RJSP round
   resubmits the vjob from scratch. VMs of completed vjobs still parked
   on the node just die (Terminated). Returns the resubmitted vjobs. *)
let crash_node t node_id =
  if not t.alive.(node_id) then []
  else begin
    t.alive.(node_id) <- false;
    let old_config = t.config in
    let on_node vm_id =
      match Configuration.state old_config vm_id with
      | Configuration.Running n
      | Configuration.Sleeping n
      | Configuration.Sleeping_ram n -> n = node_id
      | Configuration.Waiting | Configuration.Terminated -> false
    in
    let affected =
      Array.to_list t.vjobs
      |> List.filter (fun vj ->
             (not (Hashtbl.mem t.completions (Vjob.id vj)))
             && List.exists on_node (Vjob.vms vj))
    in
    let nodes = Array.copy (Configuration.nodes old_config) in
    nodes.(node_id) <- Node.crashed nodes.(node_id);
    let config = ref (Configuration.with_nodes old_config nodes) in
    List.iter
      (fun vj ->
        List.iter
          (fun vm_id ->
            match Configuration.state !config vm_id with
            | Configuration.Terminated -> ()
            | _ ->
              config := Configuration.set_state !config vm_id Configuration.Waiting;
              let rt = t.rts.(vm_id) in
              rt.phases <- Program.normalize (t.programs vm_id);
              rt.launched <- false;
              rt.finished <- false;
              rt.rate <- 0.;
              rt.epoch <- rt.epoch + 1;
              rt.last_sync <- now t)
          (Vjob.vms vj))
      affected;
    (* whatever else was on the node (completed vjobs' idle VMs) is gone *)
    for vm_id = 0 to Array.length t.rts - 1 do
      if on_node vm_id then
        match Configuration.state !config vm_id with
        | Configuration.Waiting | Configuration.Terminated -> ()
        | _ ->
          config := Configuration.set_state !config vm_id Configuration.Terminated
    done;
    Sim_log.info (fun m ->
        m "node N%d crashed at %.0fs: %d vjobs reset for resubmission"
          node_id (now t) (List.length affected));
    if !Entropy_obs.Obs.enabled then
      Entropy_obs.Obs.sim_instant ~at_s:(now t)
        ~args:[ ("node", Entropy_obs.Trace.I node_id) ]
        "fault.node_crash";
    set_config t !config;
    List.map Vjob.id affected
  end

(* -- construction ----------------------------------------------------------- *)

let create ?(params = Perf_model.defaults) ?storage ~engine ~config ~vjobs
    ~programs () =
  let rts =
    Array.map
      (fun vm ->
        {
          vm;
          phases = Program.normalize (programs (Vm.id vm));
          launched = false;
          finished = false;
          last_sync = Engine.now engine;
          rate = 0.;
          epoch = 0;
        })
      (Configuration.vms config)
  in
  let n = Configuration.node_count config in
  let t =
    {
      engine;
      params;
      config;
      rts;
      vjobs = Array.of_list vjobs;
      programs;
      local_ops = Array.make n 0;
      remote_ops = Array.make n 0;
      totals = Array.make n 0;
      alive = Array.make n true;
      storage;
      completions = Hashtbl.create 16;
      on_change = (fun () -> ());
    }
  in
  check_launches t;
  recompute t;
  t

let all_complete t =
  Array.for_all (fun vj -> Hashtbl.mem t.completions (Vjob.id vj)) t.vjobs

let remaining_work t =
  Array.fold_left
    (fun acc rt -> acc +. Program.total_compute rt.phases)
    0. t.rts
