(** Discrete-event simulation core. *)

type t

val create : unit -> t
val now : t -> float

val pending : t -> int
(** Live (not cancelled) queued events. Cancelled events stay in the
    heap until drained but are not counted. *)

val cancelled : t -> int
(** Cancelled events still sitting in the heap. *)

val executed : t -> int

type handle

val schedule : t -> at:float -> (unit -> unit) -> handle
(** Raises [Invalid_argument] when [at] is in the past. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> handle

val cancel : handle -> unit
(** Idempotent; cancelling an event that already ran is a no-op. *)

val set_chooser : t -> (int -> int) option -> unit
(** Schedule hook for model checking: when set and [n >= 2] events are
    tied at the next timestamp, [chooser n] picks which runs first
    (0-based, insertion order; out-of-range falls back to 0 = FIFO).
    [None] (the default) keeps the deterministic FIFO tie-break and the
    allocation-free pop. Cancelled-but-queued events still count as
    ties (draining one is a no-op). *)

val step : t -> bool
(** Execute the next event; [false] when the queue is empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain events with time [<= until]. *)
