(* Execute a reconfiguration plan on the simulated cluster.

   Two execution models are provided:
   - [execute]: the paper's pool model — pools run sequentially; inside
     a pool every action starts in parallel, except the suspends and
     resumes, which are pipelined one second apart (in the order the
     consistency pass sorted them);
   - [execute_continuous]: the event-driven model (Entropy 2 /
     BtrPlace) — each action (or vjob suspend/resume group) starts as
     soon as its claim fits the live free resources, honouring per-VM
     action precedence.

   In both, an in-flight operation registers contention on the nodes it
   touches, durations account for co-resident busy VMs and NFS bandwidth
   sharing (Perf_model, Storage), and the configuration changes when the
   action completes.

   Every action runs supervised: a fault injector decides per attempt
   whether the hypervisor operation fails or is slowed down, the
   supervisor policy bounds each attempt to [timeout_factor x expected
   duration] (expected = the Table 1 duration with live contention, i.e.
   what the executor would predict — injected slowdowns beyond the
   factor trip the timeout), and failed or timed-out attempts retry with
   exponential backoff in simulated time until the retry budget is
   spent. A terminal failure leaves the VM state unchanged. An action
   touching a crashed node is terminal immediately (node-lost). *)

(* capture the simulator's own log source before [open Entropy_core]
   shadows it with the core's *)
module Sim_log = Log

open Entropy_core
module Obs = Entropy_obs.Obs
module Otrace = Entropy_obs.Trace
module Ometrics = Entropy_obs.Metrics
module Injector = Entropy_fault.Injector
module Supervisor = Entropy_fault.Supervisor
module Jrecord = Entropy_journal.Record

type record = {
  started_at : float;
  finished_at : float;
  cost : int;           (* Table 1 plan cost, computed at start *)
  migrations : int;
  suspends : int;
  resumes : int;
  local_resumes : int;
  runs : int;
  stops : int;
  pools : int;
  failed : int;         (* terminally failed actions (state unchanged) *)
  retries : int;        (* extra attempts across all actions *)
  timeouts : int;       (* attempts aborted by the supervisor timeout *)
  node_losses : int;    (* actions lost to a crashed node *)
  failed_vms : Vm.id list;    (* VMs whose action terminally failed *)
  lost_nodes : Node.id list;  (* crashed nodes seen during the switch *)
  aborted : bool;       (* execution stopped early for repair *)
}

let duration t = t.finished_at -. t.started_at

let pp_record ppf r =
  Fmt.pf ppf
    "switch cost=%d duration=%.0fs (%d pools, %dM %dS %dR %drun %dstop)"
    r.cost (duration r) r.pools r.migrations r.suspends r.resumes r.runs
    r.stops;
  if r.failed > 0 || r.retries > 0 || r.timeouts > 0 || r.node_losses > 0 then
    Fmt.pf ppf " [%d failed, %d retries, %d timeouts, %d node-losses%s]"
      r.failed r.retries r.timeouts r.node_losses
      (if r.aborted then ", aborted" else "")

let touched_nodes = function
  | Action.Run { dst; _ } -> [ dst ]
  | Action.Stop { host; _ } -> [ host ]
  | Action.Suspend { host; _ } -> [ host ]
  | Action.Migrate { src; dst; _ } -> [ src; dst ]
  | Action.Resume { src; dst; _ } -> if src = dst then [ dst ] else [ src; dst ]
  (* RAM pause/unpause: too short to create measurable contention *)
  | Action.Suspend_ram _ | Action.Resume_ram _ -> []

(* RAM operations register no contention, but they still live or die
   with their host. *)
let involved_nodes = function
  | Action.Suspend_ram { host; _ } | Action.Resume_ram { host; _ } -> [ host ]
  | a -> touched_nodes a

(* First crashed node in the list, or -1 when all are alive: avoids the
   [List.find_opt] closure + option that the supervised path would
   otherwise allocate twice per attempt. *)
let rec first_dead cluster = function
  | [] -> -1
  | nd :: rest ->
    if Cluster.node_alive cluster nd then first_dead cluster rest else nd

let is_pipelined = function
  | Action.Suspend _ | Action.Resume _ | Action.Suspend_ram _
  | Action.Resume_ram _ -> true
  | Action.Run _ | Action.Stop _ | Action.Migrate _ -> false

let kind_name = function
  | Action.Run _ -> "run"
  | Action.Stop _ -> "stop"
  | Action.Migrate _ -> "migrate"
  | Action.Suspend _ -> "suspend"
  | Action.Resume _ -> "resume"
  | Action.Suspend_ram _ -> "suspend_ram"
  | Action.Resume_ram _ -> "resume_ram"

(* -- supervision ------------------------------------------------------------- *)

(* Per-execution failure bookkeeping, shared by both execution models. *)
type tally = {
  mutable t_failed : int;
  mutable t_retries : int;
  mutable t_timeouts : int;
  mutable t_node_losses : int;
  mutable t_failed_vms : Vm.id list;
  mutable t_lost_nodes : Node.id list;
}

let mk_tally () =
  {
    t_failed = 0;
    t_retries = 0;
    t_timeouts = 0;
    t_node_losses = 0;
    t_failed_vms = [];
    t_lost_nodes = [];
  }

let m_injected = lazy (Ometrics.counter "fault.injected")
let m_retries = lazy (Ometrics.counter "fault.retries")
let m_timeouts = lazy (Ometrics.counter "fault.timeouts")
let m_node_losses = lazy (Ometrics.counter "fault.node_losses")

let note_failed tally vm =
  tally.t_failed <- tally.t_failed + 1;
  if not (List.mem vm tally.t_failed_vms) then
    tally.t_failed_vms <- vm :: tally.t_failed_vms

let note_node_lost tally node =
  tally.t_node_losses <- tally.t_node_losses + 1;
  if not (List.mem node tally.t_lost_nodes) then
    tally.t_lost_nodes <- node :: tally.t_lost_nodes;
  if !Obs.enabled then Ometrics.incr (Lazy.force m_node_losses)

(* Resolve the supervision inputs: an explicit injector composes with
   the legacy [?should_fail] predicate; with neither, nothing is
   injected. Without an explicit policy, a caller that set up an
   injector gets the default supervised policy, the legacy predicate
   path keeps its historical fail-once/no-retry semantics. *)
let resolve ?should_fail ?injector ?policy () =
  let resolved =
    match (injector, should_fail) with
    | Some i, Some p -> Injector.with_predicate i p
    | Some i, None -> i
    | None, Some p -> Injector.of_predicate p
    | None, None -> Injector.none
  in
  let policy =
    match (policy, injector) with
    | Some p, _ -> p
    | None, Some _ -> Supervisor.default_policy
    | None, None -> Supervisor.no_retry
  in
  (resolved, policy)

(* Run one action under supervision: contention registration, duration
   (with injected slowdown), timeout, bounded backoff retries, node-loss
   detection. Calls [on_complete applied] once, when the action reaches
   a terminal outcome ([applied] is false unless the action applied).

   [emit], when given, journals every state transition of the action:
   one [Action_started] per attempt, then exactly one terminal
   [Action_done] or [Action_failed]. The records carry simulated time
   and are appended before the configuration change becomes visible to
   anyone else (the completion callback runs after the append), so a
   crash between the two is indistinguishable from a crash right before
   the transition — the write-ahead property recovery relies on. *)
let run_action ?emit ?(switch = 0) ?(pool = 0) cluster ~injector ~policy
    ~tally action ~on_complete =
  let engine = Cluster.engine cluster in
  let params = Cluster.params cluster in
  let vm = Action.vm action in
  let nodes = touched_nodes action in
  let all_nodes = involved_nodes action in
  let local = Action.is_local action in
  let kind = kind_name action in
  (* journal emission is inlined per case so the [emit = None] hot path
     allocates neither a record nor an intermediate closure *)
  let emit_started n =
    match emit with
    | None -> ()
    | Some f ->
      f
        (Jrecord.Action_started
           { switch; pool; attempt = n; at_s = Engine.now engine; action })
  in
  let emit_done () =
    match emit with
    | None -> ()
    | Some f ->
      f (Jrecord.Action_done { switch; pool; at_s = Engine.now engine; action })
  in
  let emit_failed () =
    match emit with
    | None -> ()
    | Some f ->
      f
        (Jrecord.Action_failed { switch; pool; at_s = Engine.now engine; action })
  in
  let terminal_node_loss node =
    note_node_lost tally node;
    note_failed tally vm;
    Sim_log.debug (fun m ->
        m "%s VM%d: node N%d lost, action abandoned" kind vm node);
    emit_failed ();
    on_complete false
  in
  let rec attempt n =
    match first_dead cluster all_nodes with
    | node when node >= 0 -> terminal_node_loss node
    | _ ->
      emit_started n;
      let config = Cluster.config cluster in
      let busy node = Cluster.busy ~except:vm cluster node in
      let decision = Injector.decide injector action in
      let dur = Perf_model.action_duration ~params ~busy action config in
      (* NFS bandwidth sharing: concurrent image transfers on the same
         storage server stretch each other *)
      let storage_transfer =
        match Cluster.storage cluster with
        | Some st when Storage.uses_storage action -> Some st
        | Some _ | None -> None
      in
      let dur =
        match storage_transfer with
        | Some st ->
          let factor = Storage.slowdown st vm in
          Storage.begin_transfer st vm;
          dur *. factor
        | None -> dur
      in
      (* the supervisor's expectation is what the executor itself would
         predict (contention and storage sharing included): only
         injected slowdowns beyond the factor trip the timeout *)
      let deadline = Supervisor.timeout_s policy ~expected_s:dur in
      let dur = dur *. decision.Injector.slowdown in
      let timed_out = dur > deadline in
      let run_for = if timed_out then deadline else dur in
      if !Obs.enabled then begin
        Obs.sim_span
          ~name:("sim." ^ kind)
          ~args:
            [
              ("vm", Otrace.I vm); ("dur_s", Otrace.F run_for);
              ("attempt", Otrace.I n);
            ]
          ~at_s:(Engine.now engine) ~dur_s:run_for ();
        Ometrics.observe (Ometrics.histogram ("sim.action_s." ^ kind)) run_for
      end;
      Cluster.register_op cluster ~nodes ~local;
      Cluster.recompute cluster;
      ignore
        (Engine.schedule_after engine ~delay:run_for (fun () ->
             (match storage_transfer with
             | Some st -> Storage.end_transfer st vm
             | None -> ());
             Cluster.unregister_op cluster ~nodes ~local;
             match first_dead cluster all_nodes with
             | node when node >= 0 ->
               Cluster.recompute cluster;
               terminal_node_loss node
             | _ ->
               if timed_out then begin
                 tally.t_timeouts <- tally.t_timeouts + 1;
                 if !Obs.enabled then Ometrics.incr (Lazy.force m_timeouts);
                 Cluster.recompute cluster;
                 settle n Supervisor.Attempt_timed_out
               end
               else if decision.Injector.fail then begin
                 if !Obs.enabled then Ometrics.incr (Lazy.force m_injected);
                 Cluster.recompute cluster;
                 settle n Supervisor.Fault_injected
               end
               else begin
                 match Action.apply (Cluster.config cluster) action with
                 | config ->
                   Cluster.set_config cluster config;
                   emit_done ();
                   on_complete true
                 | exception Action.Invalid reason ->
                   (* the VM's state changed under the plan (e.g. a node
                      crash reset its vjob): the action is moot *)
                   Sim_log.debug (fun m ->
                       m "%s VM%d: no longer applicable (%s)" kind vm reason);
                   note_failed tally vm;
                   Cluster.recompute cluster;
                   emit_failed ();
                   on_complete false
               end))
  and settle n reason =
    match Supervisor.next policy ~attempts:n reason with
    | `Retry delay ->
      tally.t_retries <- tally.t_retries + 1;
      if !Obs.enabled then Ometrics.incr (Lazy.force m_retries);
      Sim_log.debug (fun m ->
          m "%s VM%d: attempt %d %s, retrying in %.0fs" kind vm n
            (match reason with
            | Supervisor.Attempt_timed_out -> "timed out"
            | Supervisor.Succeeded | Supervisor.Fault_injected -> "failed")
            delay);
      ignore (Engine.schedule_after engine ~delay (fun () -> attempt (n + 1)))
    | `Done outcome ->
      (* the hypervisor operation terminally failed: the VM keeps its
         previous state; the repair path (or the next control-loop
         iteration) observes the unchanged configuration and replans *)
      note_failed tally vm;
      Sim_log.debug (fun m ->
          m "%s VM%d: %a" kind vm Supervisor.pp_outcome outcome);
      emit_failed ();
      on_complete false
  in
  attempt 1

let mk_record cluster plan ~started_at ~cost ~pools ~tally ~aborted =
  let r =
    {
      started_at;
      finished_at = Engine.now (Cluster.engine cluster);
      cost;
      migrations = Plan.migration_count plan;
      suspends = Plan.suspend_count plan;
      resumes = Plan.resume_count plan;
      local_resumes = Plan.local_resume_count plan;
      runs = Plan.run_count plan;
      stops = Plan.stop_count plan;
      pools;
      failed = tally.t_failed;
      retries = tally.t_retries;
      timeouts = tally.t_timeouts;
      node_losses = tally.t_node_losses;
      failed_vms = List.rev tally.t_failed_vms;
      lost_nodes = List.rev tally.t_lost_nodes;
      aborted;
    }
  in
  Sim_log.debug (fun m -> m "%a" pp_record r);
  if !Obs.enabled then begin
    Obs.sim_span ~name:"sim.switch"
      ~args:
        [
          ("cost", Otrace.I cost); ("pools", Otrace.I pools);
          ("failed", Otrace.I r.failed); ("retries", Otrace.I r.retries);
        ]
      ~at_s:started_at ~dur_s:(duration r) ();
    Ometrics.incr (Ometrics.counter "sim.switches");
    Ometrics.observe
      (Ometrics.histogram "sim.switch_duration_s")
      (duration r)
  end;
  r

(* -- pool-based execution --------------------------------------------------- *)

let execute ?should_fail ?injector ?policy ?(abort_on_failure = false) ?emit
    ?switch cluster plan ~on_done =
  let injector, policy = resolve ?should_fail ?injector ?policy () in
  let engine = Cluster.engine cluster in
  let params = Cluster.params cluster in
  let started_at = Engine.now engine in
  let cost = Plan.cost (Cluster.config cluster) plan in
  let pools = Array.of_list (Plan.pools plan) in
  let gap = params.Perf_model.pipeline_gap_s in
  let tally = mk_tally () in
  let rec run_pool i =
    if i >= Array.length pools then
      on_done
        (mk_record cluster plan ~started_at ~cost ~pools:(Array.length pools)
           ~tally ~aborted:false)
    else if abort_on_failure && tally.t_failed > 0 then
      (* stop at the pool boundary: the rest of the plan may depend on
         the failed actions — hand the salvage decision to the repair
         layer instead of blindly pushing on *)
      on_done
        (mk_record cluster plan ~started_at ~cost ~pools:(Array.length pools)
           ~tally ~aborted:true)
    else begin
      let actions = pools.(i) in
      let remaining = ref (List.length actions) in
      let finish_one _applied =
        decr remaining;
        if !remaining = 0 then begin
          (match emit with
          | Some f ->
            f
              (Jrecord.Pool_committed
                 {
                   switch = Option.value switch ~default:0;
                   pool = i;
                   at_s = Engine.now engine;
                 })
          | None -> ());
          run_pool (i + 1)
        end
      in
      (* pipeline offsets: the k-th suspend/resume starts k seconds in *)
      let k = ref 0 in
      List.iter
        (fun action ->
          let offset =
            if is_pipelined action then begin
              let o = float_of_int !k *. gap in
              incr k;
              o
            end
            else 0.
          in
          ignore
            (Engine.schedule_after engine ~delay:offset (fun () ->
                 run_action ?emit ?switch ~pool:i cluster ~injector ~policy
                   ~tally action ~on_complete:finish_one)))
        actions;
      if actions = [] then run_pool (i + 1)
    end
  in
  run_pool 0

(* -- continuous (event-driven) execution ------------------------------------- *)

let execute_continuous ?should_fail ?injector ?policy
    ?(abort_on_failure = false) ?emit ?switch ?vjobs cluster plan ~on_done =
  let injector, policy = resolve ?should_fail ?injector ?policy () in
  let engine = Cluster.engine cluster in
  let params = Cluster.params cluster in
  let started_at = Engine.now engine in
  let cost = Plan.cost (Cluster.config cluster) plan in
  let gap = params.Perf_model.pipeline_gap_s in
  let pending = ref (Continuous.group_actions ?vjobs plan) in
  let prereq = Continuous.vm_prerequisites plan in
  let completed = Array.make (Array.length prereq) false in
  let tally = mk_tally () in
  let in_flight = ref 0 in
  let n = Configuration.node_count (Cluster.config cluster) in
  let aborting () = abort_on_failure && tally.t_failed > 0 in
  (* claims reserved by in-flight actions, on top of the live loads *)
  let claimed_cpu = Array.make n 0 and claimed_mem = Array.make n 0 in
  let group_feasible g =
    let config = Cluster.config cluster in
    let demand = Cluster.demand cluster in
    List.for_all
      (fun (i, _) ->
        match prereq.(i) with None -> true | Some j -> completed.(j))
      g
    &&
    let need_cpu = Array.make n 0 and need_mem = Array.make n 0 in
    List.iter
      (fun (_, a) ->
        match Action.claim config demand a with
        | Some (node, cpu, mem) ->
          need_cpu.(node) <- need_cpu.(node) + cpu;
          need_mem.(node) <- need_mem.(node) + mem
        | None -> ())
      g;
    let ok = ref true in
    for i = 0 to n - 1 do
      if
        (need_cpu.(i) > 0 || need_mem.(i) > 0)
        && (need_cpu.(i) > Configuration.free_cpu config demand i - claimed_cpu.(i)
           || need_mem.(i) > Configuration.free_mem config i - claimed_mem.(i))
      then ok := false
    done;
    !ok
  in
  let finished () =
    on_done
      (mk_record cluster plan ~started_at ~cost ~pools:1 ~tally
         ~aborted:(aborting () && !pending <> []))
  in
  let rec start_group g =
    let config = Cluster.config cluster in
    let demand = Cluster.demand cluster in
    List.iteri
      (fun k (i, a) ->
        let claim = Action.claim config demand a in
        (match claim with
        | Some (node, cpu, mem) ->
          claimed_cpu.(node) <- claimed_cpu.(node) + cpu;
          claimed_mem.(node) <- claimed_mem.(node) + mem
        | None -> ());
        incr in_flight;
        let offset = if List.length g > 1 then float_of_int k *. gap else 0. in
        ignore
          (Engine.schedule_after engine ~delay:offset (fun () ->
               (* the continuous model has no pool boundaries: every
                  action journals under pool 0 *)
               run_action ?emit ?switch ~pool:0 cluster ~injector ~policy
                 ~tally a ~on_complete:(fun _applied ->
                   completed.(i) <- true;
                   (match claim with
                   | Some (node, cpu, mem) ->
                     claimed_cpu.(node) <- claimed_cpu.(node) - cpu;
                     claimed_mem.(node) <- claimed_mem.(node) - mem
                   | None -> ());
                   decr in_flight;
                   try_start ();
                   if !in_flight = 0 && (!pending = [] || aborting ()) then
                     finished ()))))
      g
  and try_start () =
    if not (aborting ()) then begin
      let rec scan () =
        let started = ref false in
        pending :=
          List.filter
            (fun g ->
              if group_feasible g then begin
                start_group g;
                started := true;
                false
              end
              else true)
            !pending;
        if !started then scan ()
      in
      scan ();
      (* live demands can drift from the planning-time ones: when nothing
         can start and nothing is in flight, force the oldest group (the
         plan's own order is a valid execution under planning demands) *)
      if !in_flight = 0 then
        match !pending with
        | g :: rest ->
          pending := rest;
          start_group g
        | [] -> ()
    end
  in
  if !pending = [] then finished () else try_start ()
