(* Execute a reconfiguration plan on the simulated cluster.

   Two execution models are provided:
   - [execute]: the paper's pool model — pools run sequentially; inside
     a pool every action starts in parallel, except the suspends and
     resumes, which are pipelined one second apart (in the order the
     consistency pass sorted them);
   - [execute_continuous]: the event-driven model (Entropy 2 /
     BtrPlace) — each action (or vjob suspend/resume group) starts as
     soon as its claim fits the live free resources, honouring per-VM
     action precedence.

   In both, an in-flight operation registers contention on the nodes it
   touches, durations account for co-resident busy VMs and NFS bandwidth
   sharing (Perf_model, Storage), and the configuration changes when the
   action completes. An injected failure leaves the VM state unchanged. *)

(* capture the simulator's own log source before [open Entropy_core]
   shadows it with the core's *)
module Sim_log = Log

open Entropy_core
module Obs = Entropy_obs.Obs
module Otrace = Entropy_obs.Trace
module Ometrics = Entropy_obs.Metrics

type record = {
  started_at : float;
  finished_at : float;
  cost : int;           (* Table 1 plan cost, computed at start *)
  migrations : int;
  suspends : int;
  resumes : int;
  local_resumes : int;
  runs : int;
  stops : int;
  pools : int;
  failed : int;         (* injected action failures (state unchanged) *)
}

let duration t = t.finished_at -. t.started_at

let pp_record ppf r =
  Fmt.pf ppf
    "switch cost=%d duration=%.0fs (%d pools, %dM %dS %dR %drun %dstop)"
    r.cost (duration r) r.pools r.migrations r.suspends r.resumes r.runs
    r.stops

let touched_nodes = function
  | Action.Run { dst; _ } -> [ dst ]
  | Action.Stop { host; _ } -> [ host ]
  | Action.Suspend { host; _ } -> [ host ]
  | Action.Migrate { src; dst; _ } -> [ src; dst ]
  | Action.Resume { src; dst; _ } -> if src = dst then [ dst ] else [ src; dst ]
  (* RAM pause/unpause: too short to create measurable contention *)
  | Action.Suspend_ram _ | Action.Resume_ram _ -> []

let is_pipelined = function
  | Action.Suspend _ | Action.Resume _ | Action.Suspend_ram _
  | Action.Resume_ram _ -> true
  | Action.Run _ | Action.Stop _ | Action.Migrate _ -> false

let kind_name = function
  | Action.Run _ -> "run"
  | Action.Stop _ -> "stop"
  | Action.Migrate _ -> "migrate"
  | Action.Suspend _ -> "suspend"
  | Action.Resume _ -> "resume"
  | Action.Suspend_ram _ -> "suspend_ram"
  | Action.Resume_ram _ -> "resume_ram"

let mk_record cluster plan ~started_at ~cost ~pools ~failed =
  let r =
    {
      started_at;
      finished_at = Engine.now (Cluster.engine cluster);
      cost;
      migrations = Plan.migration_count plan;
      suspends = Plan.suspend_count plan;
      resumes = Plan.resume_count plan;
      local_resumes = Plan.local_resume_count plan;
      runs = Plan.run_count plan;
      stops = Plan.stop_count plan;
      pools;
      failed;
    }
  in
  Sim_log.debug (fun m -> m "%a" pp_record r);
  if !Obs.enabled then begin
    Obs.sim_span ~name:"sim.switch"
      ~args:
        [
          ("cost", Otrace.I cost); ("pools", Otrace.I pools);
          ("failed", Otrace.I failed);
        ]
      ~at_s:started_at ~dur_s:(duration r) ();
    Ometrics.incr (Ometrics.counter "sim.switches");
    Ometrics.observe
      (Ometrics.histogram "sim.switch_duration_s")
      (duration r)
  end;
  r

(* Run one action: contention registration, duration, completion. Calls
   [on_complete applied] when done ([applied] is false on an injected
   failure). *)
let run_action cluster ~should_fail action ~on_complete =
  let engine = Cluster.engine cluster in
  let params = Cluster.params cluster in
  let config = Cluster.config cluster in
  let vm = Action.vm action in
  let busy node = Cluster.busy ~except:vm cluster node in
  let dur = Perf_model.action_duration ~params ~busy action config in
  (* NFS bandwidth sharing: concurrent image transfers on the same
     storage server stretch each other *)
  let storage_transfer =
    match Cluster.storage cluster with
    | Some st when Storage.uses_storage action -> Some st
    | Some _ | None -> None
  in
  let dur =
    match storage_transfer with
    | Some st ->
      let factor = Storage.slowdown st vm in
      Storage.begin_transfer st vm;
      dur *. factor
    | None -> dur
  in
  if !Obs.enabled then begin
    let kind = kind_name action in
    (* simulated-time span of the hypervisor operation, plus its
       duration distribution (the Perf_model + storage-sharing output) *)
    Obs.sim_span
      ~name:("sim." ^ kind)
      ~args:[ ("vm", Otrace.I vm); ("dur_s", Otrace.F dur) ]
      ~at_s:(Engine.now engine) ~dur_s:dur ();
    Ometrics.observe (Ometrics.histogram ("sim.action_s." ^ kind)) dur
  end;
  let nodes = touched_nodes action in
  let local = Action.is_local action in
  Cluster.register_op cluster ~nodes ~local;
  Cluster.recompute cluster;
  ignore
    (Engine.schedule_after engine ~delay:dur (fun () ->
         (match storage_transfer with
         | Some st -> Storage.end_transfer st vm
         | None -> ());
         Cluster.unregister_op cluster ~nodes ~local;
         if should_fail action then begin
           (* the hypervisor operation failed: the VM keeps its previous
              state; the next control-loop iteration observes the
              unchanged configuration and replans *)
           Cluster.recompute cluster;
           on_complete false
         end
         else begin
           let config = Cluster.config cluster in
           Cluster.set_config cluster (Action.apply config action);
           on_complete true
         end))

(* -- pool-based execution --------------------------------------------------- *)

let execute ?(should_fail = fun _ -> false) cluster plan ~on_done =
  let engine = Cluster.engine cluster in
  let params = Cluster.params cluster in
  let started_at = Engine.now engine in
  let cost = Plan.cost (Cluster.config cluster) plan in
  let pools = Array.of_list (Plan.pools plan) in
  let gap = params.Perf_model.pipeline_gap_s in
  let failures = ref 0 in
  let rec run_pool i =
    if i >= Array.length pools then
      on_done
        (mk_record cluster plan ~started_at ~cost ~pools:(Array.length pools)
           ~failed:!failures)
    else begin
      let actions = pools.(i) in
      let remaining = ref (List.length actions) in
      let finish_one applied =
        if not applied then incr failures;
        decr remaining;
        if !remaining = 0 then run_pool (i + 1)
      in
      (* pipeline offsets: the k-th suspend/resume starts k seconds in *)
      let k = ref 0 in
      List.iter
        (fun action ->
          let offset =
            if is_pipelined action then begin
              let o = float_of_int !k *. gap in
              incr k;
              o
            end
            else 0.
          in
          ignore
            (Engine.schedule_after engine ~delay:offset (fun () ->
                 run_action cluster ~should_fail action
                   ~on_complete:finish_one)))
        actions;
      if actions = [] then run_pool (i + 1)
    end
  in
  run_pool 0

(* -- continuous (event-driven) execution ------------------------------------- *)

let execute_continuous ?(should_fail = fun _ -> false) ?vjobs cluster plan
    ~on_done =
  let engine = Cluster.engine cluster in
  let params = Cluster.params cluster in
  let started_at = Engine.now engine in
  let cost = Plan.cost (Cluster.config cluster) plan in
  let gap = params.Perf_model.pipeline_gap_s in
  let pending = ref (Continuous.group_actions ?vjobs plan) in
  let prereq = Continuous.vm_prerequisites plan in
  let completed = Array.make (Array.length prereq) false in
  let failures = ref 0 in
  let in_flight = ref 0 in
  let n = Configuration.node_count (Cluster.config cluster) in
  (* claims reserved by in-flight actions, on top of the live loads *)
  let claimed_cpu = Array.make n 0 and claimed_mem = Array.make n 0 in
  let group_feasible g =
    let config = Cluster.config cluster in
    let demand = Cluster.demand cluster in
    List.for_all
      (fun (i, _) ->
        match prereq.(i) with None -> true | Some j -> completed.(j))
      g
    &&
    let need_cpu = Array.make n 0 and need_mem = Array.make n 0 in
    List.iter
      (fun (_, a) ->
        match Action.claim config demand a with
        | Some (node, cpu, mem) ->
          need_cpu.(node) <- need_cpu.(node) + cpu;
          need_mem.(node) <- need_mem.(node) + mem
        | None -> ())
      g;
    let ok = ref true in
    for i = 0 to n - 1 do
      if
        (need_cpu.(i) > 0 || need_mem.(i) > 0)
        && (need_cpu.(i) > Configuration.free_cpu config demand i - claimed_cpu.(i)
           || need_mem.(i) > Configuration.free_mem config i - claimed_mem.(i))
      then ok := false
    done;
    !ok
  in
  let finished () =
    on_done (mk_record cluster plan ~started_at ~cost ~pools:1 ~failed:!failures)
  in
  let rec start_group g =
    let config = Cluster.config cluster in
    let demand = Cluster.demand cluster in
    List.iteri
      (fun k (i, a) ->
        let claim = Action.claim config demand a in
        (match claim with
        | Some (node, cpu, mem) ->
          claimed_cpu.(node) <- claimed_cpu.(node) + cpu;
          claimed_mem.(node) <- claimed_mem.(node) + mem
        | None -> ());
        incr in_flight;
        let offset = if List.length g > 1 then float_of_int k *. gap else 0. in
        ignore
          (Engine.schedule_after engine ~delay:offset (fun () ->
               run_action cluster ~should_fail a ~on_complete:(fun applied ->
                   if not applied then incr failures;
                   completed.(i) <- true;
                   (match claim with
                   | Some (node, cpu, mem) ->
                     claimed_cpu.(node) <- claimed_cpu.(node) - cpu;
                     claimed_mem.(node) <- claimed_mem.(node) - mem
                   | None -> ());
                   decr in_flight;
                   try_start ();
                   if !in_flight = 0 && !pending = [] then finished ()))))
      g
  and try_start () =
    let rec scan () =
      let started = ref false in
      pending :=
        List.filter
          (fun g ->
            if group_feasible g then begin
              start_group g;
              started := true;
              false
            end
            else true)
          !pending;
      if !started then scan ()
    in
    scan ();
    (* live demands can drift from the planning-time ones: when nothing
       can start and nothing is in flight, force the oldest group (the
       plan's own order is a valid execution under planning demands) *)
    if !in_flight = 0 then
      match !pending with
      | g :: rest ->
        pending := rest;
        start_group g
      | [] -> ()
  in
  if !pending = [] then finished () else try_start ()
