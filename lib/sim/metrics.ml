(* Resource-utilization time series (Figure 13): sampled memory and CPU
   of the running VMs, relative to the cluster capacity. The CPU demand
   can exceed 100% (overload) — exactly the situation the cluster-wide
   context switch resolves. *)

open Entropy_core

type point = {
  time : float;
  mem_used_mb : int;       (* memory of the running VMs *)
  cpu_demand_pct : float;  (* demanded CPU / capacity, may exceed 100 *)
  cpu_used_pct : float;    (* allocated CPU / capacity, capped per node *)
  running_vms : int;
  active_nodes : int;      (* nodes hosting at least one running VM *)
}

type t = {
  mutable points : point list; (* newest first *)
  period : float;
  mutable stopped : bool;
  mutable pending : Engine.handle option; (* next scheduled sample *)
}

let capacity_cpu config =
  Array.fold_left
    (fun acc n -> acc + Node.cpu_capacity n)
    0 (Configuration.nodes config)

let snapshot cluster =
  let config = Cluster.config cluster in
  let demand = Cluster.demand cluster in
  let cpu_load, mem_load = Configuration.loads config demand in
  let cap = float_of_int (capacity_cpu config) in
  let demand_total = Array.fold_left ( + ) 0 cpu_load in
  let used_total =
    let acc = ref 0 in
    Array.iteri
      (fun i load ->
        acc :=
          !acc + min load (Node.cpu_capacity (Configuration.node config i)))
      cpu_load;
    !acc
  in
  let active_nodes =
    let count = ref 0 in
    Array.iteri
      (fun i _ -> if Configuration.running_on config i <> [] then incr count)
      (Configuration.nodes config);
    !count
  in
  {
    time = Cluster.now cluster;
    mem_used_mb = Array.fold_left ( + ) 0 mem_load;
    cpu_demand_pct = 100. *. float_of_int demand_total /. cap;
    cpu_used_pct = 100. *. float_of_int used_total /. cap;
    running_vms = List.length (Configuration.running_vms config);
    active_nodes;
  }

let start ?(period = 30.) cluster =
  if period <= 0. then
    invalid_arg
      (Printf.sprintf "Metrics.start: period must be positive (got %g)"
         period);
  let t = { points = []; period; stopped = false; pending = None } in
  let engine = Cluster.engine cluster in
  let rec sample () =
    t.pending <- None;
    if not t.stopped then begin
      t.points <- snapshot cluster :: t.points;
      t.pending <- Some (Engine.schedule_after engine ~delay:t.period sample)
    end
  in
  sample ();
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Option.iter Engine.cancel t.pending;
    t.pending <- None
  end

let points t = List.rev t.points

let peak_cpu_demand t =
  List.fold_left (fun acc p -> Float.max acc p.cpu_demand_pct) 0. (points t)

let mean f t =
  match points t with
  | [] -> 0.
  | ps -> List.fold_left (fun acc p -> acc +. f p) 0. ps /. float_of_int (List.length ps)

let mean_cpu_used t = mean (fun p -> p.cpu_used_pct) t
let mean_mem_used t = mean (fun p -> float_of_int p.mem_used_mb) t

(* Energy proxy: integral of active nodes over time (node-seconds), the
   quantity power-aware placement (Verma et al., cited in the paper's
   introduction) minimises. *)
let point_to_json p =
  let open Entropy_obs.Json in
  Obj
    [
      ("time", Float p.time);
      ("mem_used_mb", Int p.mem_used_mb);
      ("cpu_demand_pct", Float p.cpu_demand_pct);
      ("cpu_used_pct", Float p.cpu_used_pct);
      ("running_vms", Int p.running_vms);
      ("active_nodes", Int p.active_nodes);
    ]

let points_to_json points = Entropy_obs.Json.List (List.map point_to_json points)

let to_json t =
  let open Entropy_obs.Json in
  Obj [ ("period", Float t.period); ("points", points_to_json (points t)) ]

let node_seconds t =
  match points t with
  | [] | [ _ ] -> 0.
  | p :: rest ->
    let acc, last =
      List.fold_left
        (fun (acc, prev) q ->
          ( acc
            +. (float_of_int prev.active_nodes *. (q.time -. prev.time)),
            q ))
        (0., p) rest
    in
    ignore last;
    acc
