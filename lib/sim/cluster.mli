(** The simulated cluster: VM workload progress, CPU sharing, contention
    from in-flight context-switch operations, vjob launch/completion. *)

open Entropy_core

type t

val create :
  ?params:Perf_model.params -> ?storage:Storage.t -> engine:Engine.t ->
  config:Configuration.t -> vjobs:Vjob.t list ->
  programs:(Vm.id -> Vworkload.Program.t) -> unit -> t

val storage : t -> Storage.t option

val engine : t -> Engine.t
val params : t -> Perf_model.params
val config : t -> Configuration.t
val now : t -> float
val vjobs : t -> Vjob.t list

val set_config : t -> Configuration.t -> unit
(** Install a new configuration (after an action completes): checks for
    newly launched vjobs and recomputes all progress rates. *)

val on_change : t -> (unit -> unit) -> unit
(** Hook called after every rate recomputation (metrics sampling). *)

val demand : t -> Demand.t
(** Current per-VM CPU demand (full processing unit while computing). *)

val vm_demand : t -> Vm.id -> int
val cpu_readings : t -> int array
(** What the monitoring daemons report. *)

val busy : ?except:Vm.id -> t -> Node.id -> bool
(** Node hosts a running VM computing at full speed. *)

val node_decel : t -> Node.id -> float
val register_op : t -> nodes:Node.id list -> local:bool -> unit
val unregister_op : t -> nodes:Node.id list -> local:bool -> unit

val recompute : t -> unit

val node_alive : t -> Node.id -> bool

val crash_node : t -> Node.id -> Vjob.id list
(** Permanently crash a node: it keeps its identity but loses all
    capacity ({!Node.crashed}). Every incomplete vjob with a VM running
    on — or an image stored on — the node loses its work: all of its
    VMs return to Waiting with their original program, so the next RJSP
    round resubmits the vjob from scratch. VMs of completed vjobs still
    parked on the node become Terminated. Returns the resubmitted vjob
    ids; idempotent (a second crash of the same node returns []). *)

val completions : t -> (Vjob.id * float) list
val completed : t -> Vjob.t -> bool
val all_complete : t -> bool
val remaining_work : t -> float
