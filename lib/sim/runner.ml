(* End-to-end simulated runs of the Entropy control loop (the paper's
   section 5.2 experiment): a cluster, a set of vjobs submitted at time
   zero running NGB-like workloads, the monitoring collector, the
   decision module and the plan executor, wired on the discrete-event
   engine.

   With a fault injector, the run becomes a chaos experiment: scripted
   node crashes fire on the engine, actions run supervised (timeouts,
   retries), and a switch that terminally loses actions aborts at the
   pool boundary and goes through the repair chain — salvage the
   surviving plan or FFD-replan — immediately, instead of waiting for
   the next loop iteration. *)

(* capture the simulator's own log source before [open Entropy_core]
   shadows it with the core's *)
module Sim_log = Log

open Entropy_core
module Trace = Vworkload.Trace
module Obs = Entropy_obs.Obs
module Injector = Entropy_fault.Injector
module Repair = Entropy_fault.Repair
module Journal = Entropy_journal.Journal
module Jrecord = Entropy_journal.Record
module Recovery = Entropy_journal.Recovery

type repair_record = {
  at : float;
  switch : int;
  source : [ `Salvaged | `Replanned ];
  before : Configuration.t;
  target : Configuration.t;
  demand : Demand.t;
  queue : Vjob.t list;
  plan : Plan.t;
}

type result = {
  makespan : float;  (* completion time of the last vjob *)
  completions : (Vjob.t * float) list;
  switches : Executor.record list;
  repairs : repair_record list;
  crashes : (Node.id * float * Vjob.id list) list;
  series : Metrics.point list;
  iterations : int;
  final_config : Configuration.t;
  killed : bool;  (* [kill_at] fired with vjobs still incomplete *)
}

(* Build the initial configuration (+ vjobs + programs) from traces.
   [arrival_spacing] staggers the submissions: vjob j arrives at
   j * spacing seconds (0 = the paper's simultaneous submission). *)
let setup ?(arrival_spacing = 0.) ~nodes ~traces () =
  let vm_specs =
    List.concat_map
      (fun t ->
        List.map2 (fun m p -> (t, m, p)) t.Trace.memories t.Trace.programs)
      traces
  in
  let vms =
    Array.of_list
      (List.mapi
         (fun i (t, m, _) ->
           Vm.make ~id:i
             ~name:(Printf.sprintf "%s-vm%02d" t.Trace.name i)
             ~memory_mb:m)
         vm_specs)
  in
  let programs = Array.of_list (List.map (fun (_, _, p) -> p) vm_specs) in
  let config = Configuration.make ~nodes ~vms in
  let vjobs =
    let next = ref 0 in
    List.mapi
      (fun j t ->
        let ids = List.init t.Trace.vm_count (fun k -> !next + k) in
        next := !next + t.Trace.vm_count;
        Vjob.make ~id:j ~name:t.Trace.name ~vms:ids
          ~submit_time:(float_of_int j *. Float.max 0.001 arrival_spacing)
          ())
      traces
  in
  (config, vjobs, fun vm_id -> programs.(vm_id))

let vjob_terminated config vjob =
  List.for_all
    (fun vm_id -> Configuration.state config vm_id = Configuration.Terminated)
    (Vjob.vms vjob)

(* Run the control loop over an arbitrary initial configuration (VMs may
   already be running/sleeping). *)
let run_custom ?(params = Perf_model.defaults) ?(period = 30.)
    ?(sample_period = 30.) ?(poll_period = 5.) ?(cp_timeout = 1.0)
    ?(max_time = 1_000_000.) ?decision ?should_fail ?injector ?policy
    ?(max_repairs = 4) ?storage ?(execution = `Pools) ?journal ?kill_at
    ?initial ~config ~vjobs ~programs () =
  let engine = Engine.create () in
  let cluster =
    Cluster.create ~params ?storage ~engine ~config ~vjobs ~programs ()
  in
  let collector =
    Vmonitor.Collector.create (fun () ->
        (Engine.now engine, Cluster.cpu_readings cluster))
  in
  let decision =
    match decision with
    | Some d -> d
    | None -> Decision.consolidation ~cp_timeout ()
  in
  let faulty = injector <> None in
  (* a journal opened on an earlier run (the resume path) continues its
     switch numbering instead of reusing ids *)
  let switch_id =
    ref
      (match journal with
      | Some j -> Recovery.next_switch_id (Journal.records j)
      | None -> 0)
  in
  let emit = Option.map (fun j r -> Journal.append j r) journal in
  let metrics = Metrics.start ~period:sample_period cluster in
  let switches = ref [] in
  let repairs = ref [] in
  let crashes = ref [] in
  let iterations = ref 0 in
  let done_flag = ref false in
  (* periodic monitoring polls, Ganglia style *)
  let rec poll_loop () =
    if not !done_flag then begin
      Vmonitor.Collector.poll collector;
      ignore (Engine.schedule_after engine ~delay:poll_period poll_loop)
    end
  in
  poll_loop ();
  let live_queue () =
    let config = Cluster.config cluster in
    let now = Engine.now engine in
    List.filter
      (fun vj ->
        Vjob.submit_time vj <= now && not (vjob_terminated config vj))
      vjobs
  in
  (* scripted node crashes fire on the engine, whatever the loop is
     doing; the executor notices in-flight actions touching the dead
     node, the next (re)plan sees the reset vjobs and shrunk capacity *)
  (match injector with
  | None -> ()
  | Some inj ->
    List.iter
      (fun (node, at_s) ->
        ignore
          (Engine.schedule engine ~at:at_s (fun () ->
               if Cluster.node_alive cluster node then begin
                 let affected = Cluster.crash_node cluster node in
                 crashes := (node, Engine.now engine, affected) :: !crashes
               end)))
      (Injector.node_crashes inj));
  let rec iterate () =
    let config = Cluster.config cluster in
    let queue = live_queue () in
    let all_done =
      List.for_all (fun vj -> vjob_terminated config vj) vjobs
    in
    if all_done then begin
      done_flag := true;
      Metrics.stop metrics
    end
    else if queue = [] then
      (* nothing submitted yet: wait for the next arrivals *)
      ignore (Engine.schedule_after engine ~delay:period iterate)
    else begin
      incr iterations;
      Vmonitor.Collector.poll collector;
      let demand = Vmonitor.Collector.demand collector in
      let finished =
        List.filter_map
          (fun vj ->
            if Cluster.completed cluster vj then Some (Vjob.id vj) else None)
          queue
      in
      let obs = { Decision.config; demand; queue; finished } in
      let result =
        (* skip span construction entirely when tracing is off: this is
           the per-iteration hot path of the control loop *)
        if !Obs.enabled then
          Obs.span ~cat:"loop" ~name:"loop.decide" (fun () ->
              decision.Decision.decide obs)
        else decision.Decision.decide obs
      in
      if Plan.is_empty result.Optimizer.plan then
        ignore (Engine.schedule_after engine ~delay:period iterate)
      else
        exec ~depth:0 ~demand ~target:result.Optimizer.target
          result.Optimizer.plan
    end
  (* execute one plan; on a degraded switch, chase it with at most
     [max_repairs] immediate repair plans before handing control back to
     the periodic loop. The switch is bracketed by write-ahead journal
     records: Switch_begin goes durable before the first action starts,
     Switch_end only after the executor reports back — a kill anywhere
     in between leaves a journal that replays to the in-flight state. *)
  and exec ~depth ~demand ~target plan =
    let queue = live_queue () in
    let sw = !switch_id in
    (match journal with
    | None -> ()
    | Some j ->
      incr switch_id;
      Journal.append j
        (Jrecord.Switch_begin
           {
             switch = sw;
             at_s = Engine.now engine;
             source = Cluster.config cluster;
             target;
             plan;
             demand;
             seed = Option.map Injector.seed injector;
           }));
    let on_done r =
      (match journal with
      | None -> ()
      | Some j ->
        Journal.append j
          (Jrecord.Switch_end
             {
               switch = sw;
               at_s = Engine.now engine;
               aborted = r.Executor.aborted;
             }));
      switches := r :: !switches;
      let degraded = r.Executor.failed > 0 in
      if faulty && degraded && depth < max_repairs then repair ~depth ~target r
      else ignore (Engine.schedule_after engine ~delay:period iterate)
    in
    match execution with
    | `Pools ->
      Executor.execute ?should_fail ?injector ?policy
        ~abort_on_failure:faulty ?emit ~switch:sw cluster plan ~on_done
    | `Continuous ->
      Executor.execute_continuous ?should_fail ?injector ?policy
        ~abort_on_failure:faulty ?emit ~switch:sw ~vjobs:queue cluster plan
        ~on_done
  and repair ~depth ~target r =
    Vmonitor.Collector.poll collector;
    let before = Cluster.config cluster in
    let demand = Vmonitor.Collector.demand collector in
    let queue = live_queue () in
    match
      Repair.repair ~vjobs:queue ~current:before ~target ~demand ~queue
        ~failed_vms:r.Executor.failed_vms ~lost_nodes:r.Executor.lost_nodes ()
    with
    | Some o ->
      Sim_log.info (fun m ->
          m "switch degraded at %.0fs (%d failed, %d node-losses): %a plan, \
             %d actions"
            (Engine.now engine) r.Executor.failed r.Executor.node_losses
            Repair.pp_source o.Repair.source
            (Plan.action_count o.Repair.plan));
      repairs :=
        {
          at = Engine.now engine;
          (* the id the chased exec below will journal under *)
          switch = !switch_id;
          source = o.Repair.source;
          before;
          target = o.Repair.target;
          demand;
          queue;
          plan = o.Repair.plan;
        }
        :: !repairs;
      exec ~depth:(depth + 1) ~demand ~target:o.Repair.target o.Repair.plan
    | None ->
      (* nothing to repair towards right now (e.g. the packing needs no
         actions): fall back to the periodic loop *)
      ignore (Engine.schedule_after engine ~delay:period iterate)
  in
  (match initial with
  | Some (target, plan) when not (Plan.is_empty plan) ->
    (* the resume path: execute a recovery-derived plan first, then fall
       back into the periodic loop through its on_done *)
    ignore
      (Engine.schedule_after engine ~delay:0.5 (fun () ->
           Vmonitor.Collector.poll collector;
           let demand = Vmonitor.Collector.demand collector in
           exec ~depth:0 ~demand ~target plan))
  | Some _ | None -> ignore (Engine.schedule_after engine ~delay:0.5 iterate));
  let horizon =
    match kill_at with Some k -> Float.min k max_time | None -> max_time
  in
  Engine.run ~until:horizon engine;
  let completions =
    List.filter_map
      (fun (id, time) ->
        List.find_opt (fun vj -> Vjob.id vj = id) vjobs
        |> Option.map (fun vj -> (vj, time)))
      (Cluster.completions cluster)
  in
  let makespan =
    List.fold_left (fun acc (_, t) -> Float.max acc t) 0. completions
  in
  let final_config = Cluster.config cluster in
  let killed =
    kill_at <> None
    && not (List.for_all (fun vj -> vjob_terminated final_config vj) vjobs)
  in
  {
    makespan;
    completions;
    switches = List.rev !switches;
    repairs = List.rev !repairs;
    crashes = List.rev !crashes;
    series = Metrics.points metrics;
    iterations = !iterations;
    final_config;
    killed;
  }

let run_entropy ?params ?period ?sample_period ?poll_period ?cp_timeout
    ?max_time ?decision ?should_fail ?injector ?policy ?max_repairs
    ?arrival_spacing ?storage ?execution ?journal ?kill_at ~nodes ~traces () =
  let config, vjobs, programs = setup ?arrival_spacing ~nodes ~traces () in
  run_custom ?params ?period ?sample_period ?poll_period ?cp_timeout
    ?max_time ?decision ?should_fail ?injector ?policy ?max_repairs ?storage
    ?execution ?journal ?kill_at ~config ~vjobs ~programs ()

(* -- crash recovery ----------------------------------------------------------- *)

type resume_info = {
  state : Recovery.switch_state;
  reconciliation : Recovery.reconciliation;
  repaired : bool;
}

let resume ?params ?period ?sample_period ?poll_period ?cp_timeout ?max_time
    ?decision ?injector ?policy ?max_repairs ?storage ?execution ?journal
    ?kill_at ~records ~observed ~vjobs ~programs () =
  match Recovery.replay records with
  | None -> None
  | Some state ->
    let queue =
      List.filter (fun vj -> not (vjob_terminated observed vj)) vjobs
    in
    let reconciliation =
      Recovery.reconcile ~vjobs:queue ~state ~observed ()
    in
    let target, plan, repaired =
      match reconciliation.Recovery.plan with
      | Some plan -> (reconciliation.Recovery.target, plan, false)
      | None -> (
        (* divergence (or a stuck planner): hand the residue to repair *)
        match
          Repair.repair_residue ~vjobs:queue ~current:observed
            ~target:reconciliation.Recovery.target
            ~demand:state.Recovery.demand ~queue
            reconciliation.Recovery.residue ()
        with
        | Some o -> (o.Repair.target, o.Repair.plan, true)
        | None ->
          (* nothing to repair towards: let the periodic loop decide *)
          (reconciliation.Recovery.target, Plan.empty, true))
    in
    Sim_log.info (fun m ->
        m "resuming switch %d from %d journal records: %d done, %d pending, \
           %d frozen%s"
          state.Recovery.switch (List.length records)
          (List.length reconciliation.Recovery.done_vms)
          (List.length reconciliation.Recovery.pending_vms)
          (List.length reconciliation.Recovery.frozen_vms)
          (if repaired then " (via repair)" else ""));
    let result =
      run_custom ?params ?period ?sample_period ?poll_period ?cp_timeout
        ?max_time ?decision ?injector ?policy ?max_repairs ?storage
        ?execution ?journal ?kill_at ~initial:(target, plan) ~config:observed
        ~vjobs ~programs ()
    in
    Some ({ state; reconciliation; repaired }, result)

let mean_switch_duration result =
  match result.switches with
  | [] -> 0.
  | s ->
    List.fold_left (fun acc r -> acc +. Executor.duration r) 0. s
    /. float_of_int (List.length s)
