(* Array-based binary min-heap keyed by (priority, sequence number); the
   sequence number makes the pop order of equal-priority entries
   deterministic (FIFO).

   Priorities, sequence numbers, and values live in parallel arrays so
   the priority array stays an unboxed float array: pushing and popping
   allocate nothing (no per-entry record, no boxed key), which matters
   because the simulation engine goes through here for every event. *)

type 'a t = {
  mutable prios : float array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { prios = [||]; seqs = [||]; values = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let less t i j =
  t.prios.(i) < t.prios.(j)
  || (t.prios.(i) = t.prios.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let p = t.prios.(i) in
  t.prios.(i) <- t.prios.(j);
  t.prios.(j) <- p;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let v = t.values.(i) in
  t.values.(i) <- t.values.(j);
  t.values.(j) <- v

let grow t value =
  let cap = Array.length t.values in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let prios = Array.make ncap 0. in
    Array.blit t.prios 0 prios 0 t.size;
    t.prios <- prios;
    let seqs = Array.make ncap 0 in
    Array.blit t.seqs 0 seqs 0 t.size;
    t.seqs <- seqs;
    let values = Array.make ncap value in
    Array.blit t.values 0 values 0 t.size;
    t.values <- values
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && less t l i then l else i in
  let smallest = if r < t.size && less t r smallest then r else smallest in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let push t prio value =
  grow t value;
  let i = t.size in
  t.prios.(i) <- prio;
  t.seqs.(i) <- t.next_seq;
  t.values.(i) <- value;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

let top_prio t = t.prios.(0)

let pop_top t =
  let top = t.values.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.prios.(0) <- t.prios.(t.size);
    t.seqs.(0) <- t.seqs.(t.size);
    t.values.(0) <- t.values.(t.size);
    sift_down t 0
  end;
  top

let pop t =
  if t.size = 0 then None
  else
    let prio = top_prio t in
    Some (prio, pop_top t)

(* -- schedule hook support -------------------------------------------------

   The model checker's engine chooser needs to see and pick among the
   entries tied at the minimum priority. These are O(size) scans plus a
   positional removal — fine for exploration, never on the
   deterministic hot path ([pop_top] stays allocation-free). *)

let tied_count t =
  if t.size = 0 then 0
  else begin
    let top = t.prios.(0) in
    let n = ref 0 in
    for i = 0 to t.size - 1 do
      if t.prios.(i) = top then incr n
    done;
    !n
  end

(* Remove the entry at heap slot [i]: move the last entry in, then
   restore the heap property in whichever direction it was broken. *)
let remove_at t i =
  let v = t.values.(i) in
  t.size <- t.size - 1;
  if i < t.size then begin
    t.prios.(i) <- t.prios.(t.size);
    t.seqs.(i) <- t.seqs.(t.size);
    t.values.(i) <- t.values.(t.size);
    sift_down t i;
    sift_up t i
  end;
  v

let pop_tied t k =
  if t.size = 0 then invalid_arg "Heap.pop_tied: empty heap";
  let top = t.prios.(0) in
  let tied = ref [] in
  for i = t.size - 1 downto 0 do
    if t.prios.(i) = top then tied := i :: !tied
  done;
  let tied =
    List.sort (fun a b -> compare t.seqs.(a) t.seqs.(b)) !tied
  in
  let len = List.length tied in
  let k = if k < 0 || k >= len then 0 else k in
  remove_at t (List.nth tied k)
