(** Resource-utilization time series (Figure 13 data). *)

type point = {
  time : float;
  mem_used_mb : int;
  cpu_demand_pct : float;  (** may exceed 100 under overload *)
  cpu_used_pct : float;
  running_vms : int;
  active_nodes : int;  (** nodes hosting at least one running VM *)
}

type t

val snapshot : Cluster.t -> point

val start : ?period:float -> Cluster.t -> t
(** Begin periodic sampling on the cluster's engine (default 30 s).
    Raises [Invalid_argument] when [period] is not positive (a zero
    delay would re-enqueue the sampler at the same simulated instant,
    flooding the event queue). *)

val stop : t -> unit
(** Stop sampling and cancel the pending sample event. Idempotent. *)

val points : t -> point list
(** In chronological order. *)

val point_to_json : point -> Entropy_obs.Json.t
val points_to_json : point list -> Entropy_obs.Json.t

val to_json : t -> Entropy_obs.Json.t
(** [{"period": ..., "points": [...]}] — the Figure 13 series as JSON. *)

val peak_cpu_demand : t -> float
val mean_cpu_used : t -> float
val mean_mem_used : t -> float

val node_seconds : t -> float
(** Integral of active nodes over time — the energy proxy power-aware
    placement minimises. *)
