(** End-to-end simulated Entropy runs (the section 5.2 experiment),
    optionally under fault injection with supervised execution and
    immediate plan repair. *)

open Entropy_core

type repair_record = {
  at : float;           (** simulated time of the repair decision *)
  switch : int;
      (** journal switch id the repair plan executes under (0 when no
          journal is attached) — lets flight-recorder analyses join a
          repair back to its journaled switch *)
  source : [ `Salvaged | `Replanned ];
  before : Configuration.t;  (** mid-switch configuration repaired from *)
  target : Configuration.t;  (** where the repaired plan ends *)
  demand : Demand.t;    (** demand the repair was planned against *)
  queue : Vjob.t list;  (** live vjobs at repair time *)
  plan : Plan.t;
}

type result = {
  makespan : float;  (** completion time of the last vjob *)
  completions : (Vjob.t * float) list;
  switches : Executor.record list;
  repairs : repair_record list;
      (** repair plans executed after degraded switches, in order *)
  crashes : (Node.id * float * Vjob.id list) list;
      (** scripted node crashes that fired: node, time, resubmitted
          vjobs *)
  series : Metrics.point list;
  iterations : int;  (** control-loop iterations executed *)
  final_config : Configuration.t;
  killed : bool;
      (** the run was cut short by [kill_at] with vjobs incomplete —
          the simulated controller crash *)
}

val setup :
  ?arrival_spacing:float -> nodes:Node.t array ->
  traces:Vworkload.Trace.t list -> unit ->
  Configuration.t * Vjob.t list * (Vm.id -> Vworkload.Program.t)
(** Flatten traces into an all-waiting configuration, vjobs and per-VM
    programs. [arrival_spacing] staggers submissions (vjob j arrives at
    j * spacing; default: all at t=0 as in the paper). *)

val run_custom :
  ?params:Perf_model.params -> ?period:float -> ?sample_period:float ->
  ?poll_period:float -> ?cp_timeout:float -> ?max_time:float ->
  ?decision:Decision.t -> ?should_fail:(Action.t -> bool) ->
  ?injector:Entropy_fault.Injector.t ->
  ?policy:Entropy_fault.Supervisor.policy -> ?max_repairs:int ->
  ?storage:Storage.t -> ?execution:[ `Pools | `Continuous ] ->
  ?journal:Entropy_journal.Journal.t -> ?kill_at:float ->
  ?initial:Configuration.t * Plan.t ->
  config:Configuration.t -> vjobs:Vjob.t list ->
  programs:(Vm.id -> Vworkload.Program.t) -> unit -> result
(** Run the control loop over an arbitrary initial configuration (VMs
    may already be running or sleeping). [execution] selects pool-based
    (default, the paper's model) or continuous switch execution.

    With [injector], actions run supervised under [policy] (default
    {!Entropy_fault.Supervisor.default_policy}), scripted node crashes
    fire on the engine, and a switch that terminally loses actions
    aborts and is chased by at most [max_repairs] (default 4) immediate
    repair plans — salvage or FFD replan — before the periodic loop
    resumes.

    With [journal], every switch is bracketed by write-ahead records
    ([Switch_begin] before the first action, [Switch_end] after the
    executor reports) and every action state transition is journaled
    (see {!Executor.execute}). [kill_at] stops the discrete-event engine
    at that simulated time — the controller crash: no [Switch_end] is
    written for an in-flight switch and [result.killed] is set when
    vjobs were left incomplete. [initial] executes a given
    [(target, plan)] first (at t=0.5s) instead of consulting the
    decision module — the resume path; an empty plan falls through to
    the periodic loop. *)

val run_entropy :
  ?params:Perf_model.params -> ?period:float -> ?sample_period:float ->
  ?poll_period:float -> ?cp_timeout:float -> ?max_time:float ->
  ?decision:Decision.t -> ?should_fail:(Action.t -> bool) ->
  ?injector:Entropy_fault.Injector.t ->
  ?policy:Entropy_fault.Supervisor.policy -> ?max_repairs:int ->
  ?arrival_spacing:float -> ?storage:Storage.t ->
  ?execution:[ `Pools | `Continuous ] ->
  ?journal:Entropy_journal.Journal.t -> ?kill_at:float ->
  nodes:Node.t array -> traces:Vworkload.Trace.t list -> unit -> result
(** Run the control loop until every vjob has completed and been
    stopped. The loop only sees the vjobs already submitted at each
    iteration. [should_fail] injects hypervisor action failures (see
    {!Executor.execute}); [injector] enables the full fault pipeline and
    [journal] / [kill_at] the crash-tolerance pipeline (see
    {!run_custom}). *)

type resume_info = {
  state : Entropy_journal.Recovery.switch_state;
      (** the in-flight switch replayed from the journal *)
  reconciliation : Entropy_journal.Recovery.reconciliation;
  repaired : bool;
      (** the resume plan came from {!Entropy_fault.Repair} (divergent
          residue or stuck planner) rather than straight reconciliation *)
}

val resume :
  ?params:Perf_model.params -> ?period:float -> ?sample_period:float ->
  ?poll_period:float -> ?cp_timeout:float -> ?max_time:float ->
  ?decision:Decision.t -> ?injector:Entropy_fault.Injector.t ->
  ?policy:Entropy_fault.Supervisor.policy -> ?max_repairs:int ->
  ?storage:Storage.t -> ?execution:[ `Pools | `Continuous ] ->
  ?journal:Entropy_journal.Journal.t -> ?kill_at:float ->
  records:Entropy_journal.Record.t list -> observed:Configuration.t ->
  vjobs:Vjob.t list -> programs:(Vm.id -> Vworkload.Program.t) -> unit ->
  (resume_info * result) option
(** Idempotently resume a run from a crashed controller's journal:
    replay [records], reconcile the last in-flight switch against
    [observed], execute the derived resume plan (or the repair plan on
    divergence) and then run the periodic loop to completion. [None]
    when the journal holds no switch — nothing to resume; start a fresh
    run instead. Pass the same [journal] to keep appending: the resumed
    switch takes the next free switch id. The journaled injector seed is
    available as [state.seed] for rebuilding a deterministic injector;
    [injector] itself stays the caller's choice. *)

val mean_switch_duration : result -> float
