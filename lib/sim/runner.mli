(** End-to-end simulated Entropy runs (the section 5.2 experiment),
    optionally under fault injection with supervised execution and
    immediate plan repair. *)

open Entropy_core

type repair_record = {
  at : float;           (** simulated time of the repair decision *)
  source : [ `Salvaged | `Replanned ];
  before : Configuration.t;  (** mid-switch configuration repaired from *)
  target : Configuration.t;  (** where the repaired plan ends *)
  demand : Demand.t;    (** demand the repair was planned against *)
  queue : Vjob.t list;  (** live vjobs at repair time *)
  plan : Plan.t;
}

type result = {
  makespan : float;  (** completion time of the last vjob *)
  completions : (Vjob.t * float) list;
  switches : Executor.record list;
  repairs : repair_record list;
      (** repair plans executed after degraded switches, in order *)
  crashes : (Node.id * float * Vjob.id list) list;
      (** scripted node crashes that fired: node, time, resubmitted
          vjobs *)
  series : Metrics.point list;
  iterations : int;  (** control-loop iterations executed *)
  final_config : Configuration.t;
}

val setup :
  ?arrival_spacing:float -> nodes:Node.t array ->
  traces:Vworkload.Trace.t list -> unit ->
  Configuration.t * Vjob.t list * (Vm.id -> Vworkload.Program.t)
(** Flatten traces into an all-waiting configuration, vjobs and per-VM
    programs. [arrival_spacing] staggers submissions (vjob j arrives at
    j * spacing; default: all at t=0 as in the paper). *)

val run_custom :
  ?params:Perf_model.params -> ?period:float -> ?sample_period:float ->
  ?poll_period:float -> ?cp_timeout:float -> ?max_time:float ->
  ?decision:Decision.t -> ?should_fail:(Action.t -> bool) ->
  ?injector:Entropy_fault.Injector.t ->
  ?policy:Entropy_fault.Supervisor.policy -> ?max_repairs:int ->
  ?storage:Storage.t -> ?execution:[ `Pools | `Continuous ] ->
  config:Configuration.t -> vjobs:Vjob.t list ->
  programs:(Vm.id -> Vworkload.Program.t) -> unit -> result
(** Run the control loop over an arbitrary initial configuration (VMs
    may already be running or sleeping). [execution] selects pool-based
    (default, the paper's model) or continuous switch execution.

    With [injector], actions run supervised under [policy] (default
    {!Entropy_fault.Supervisor.default_policy}), scripted node crashes
    fire on the engine, and a switch that terminally loses actions
    aborts and is chased by at most [max_repairs] (default 4) immediate
    repair plans — salvage or FFD replan — before the periodic loop
    resumes. *)

val run_entropy :
  ?params:Perf_model.params -> ?period:float -> ?sample_period:float ->
  ?poll_period:float -> ?cp_timeout:float -> ?max_time:float ->
  ?decision:Decision.t -> ?should_fail:(Action.t -> bool) ->
  ?injector:Entropy_fault.Injector.t ->
  ?policy:Entropy_fault.Supervisor.policy -> ?max_repairs:int ->
  ?arrival_spacing:float -> ?storage:Storage.t ->
  ?execution:[ `Pools | `Continuous ] -> nodes:Node.t array ->
  traces:Vworkload.Trace.t list -> unit -> result
(** Run the control loop until every vjob has completed and been
    stopped. The loop only sees the vjobs already submitted at each
    iteration. [should_fail] injects hypervisor action failures (see
    {!Executor.execute}); [injector] enables the full fault pipeline
    (see {!run_custom}). *)

val mean_switch_duration : result -> float
