(** Log source for the simulator. Enable with e.g.
    [Logs.set_reporter (Logs_fmt.reporter ());
     Logs.Src.set_level Log.src (Some Logs.Debug)]. *)

val src : Logs.Src.t

include Logs.LOG
