(** Plan execution on the simulated cluster, with parallel pools,
    pipelined suspends/resumes, contention effects, and supervised
    fault handling (injection, timeouts, retries, node loss). *)

open Entropy_core

type record = {
  started_at : float;
  finished_at : float;
  cost : int;
  migrations : int;
  suspends : int;
  resumes : int;
  local_resumes : int;
  runs : int;
  stops : int;
  pools : int;
  failed : int;
      (** actions that terminally failed (VM state unchanged), whatever
          the cause: injected failure, exhausted retries, timeout or
          node loss *)
  retries : int;   (** extra attempts across all actions *)
  timeouts : int;  (** attempts aborted by the supervisor timeout *)
  node_losses : int;  (** actions lost to a crashed node *)
  failed_vms : Vm.id list;  (** VMs whose action terminally failed *)
  lost_nodes : Node.id list;
      (** crashed nodes encountered during the switch *)
  aborted : bool;
      (** execution stopped early ([abort_on_failure]) with part of the
          plan unexecuted *)
}

val duration : record -> float
val pp_record : Format.formatter -> record -> unit

val touched_nodes : Action.t -> Node.id list
val is_pipelined : Action.t -> bool

val execute :
  ?should_fail:(Action.t -> bool) ->
  ?injector:Entropy_fault.Injector.t ->
  ?policy:Entropy_fault.Supervisor.policy ->
  ?abort_on_failure:bool ->
  ?emit:(Entropy_journal.Record.t -> unit) ->
  ?switch:int ->
  Cluster.t -> Plan.t -> on_done:(record -> unit) -> unit
(** Pool-based execution (the paper's model): schedules the whole switch
    on the cluster's engine and calls [on_done] when the last pool
    completes.

    Every action runs supervised. [injector] decides per attempt whether
    the hypervisor operation fails or is slowed down; [policy] bounds
    each attempt to [timeout_factor x expected duration] and grants
    bounded retries with exponential backoff (default:
    {!Entropy_fault.Supervisor.default_policy} when an injector is
    given). A terminal failure leaves the VM in its previous state. With
    [abort_on_failure] (default false), execution stops at the next pool
    boundary after a terminal failure so a repair layer can salvage the
    rest; otherwise remaining pools run as before and the loop replans
    at its next iteration.

    [should_fail] is the legacy hook — equivalent to an injector
    [Predicate] model with the no-retry policy — and composes with
    [injector] when both are given.

    [emit], when given, receives a write-ahead journal record at every
    action state transition (one [Action_started] per attempt, exactly
    one terminal [Action_done] / [Action_failed] per action, a
    [Pool_committed] when a pool drains), tagged with switch id
    [switch] (default 0). Terminal records are appended before the
    completion callback observes the new configuration. *)

val execute_continuous :
  ?should_fail:(Action.t -> bool) ->
  ?injector:Entropy_fault.Injector.t ->
  ?policy:Entropy_fault.Supervisor.policy ->
  ?abort_on_failure:bool ->
  ?emit:(Entropy_journal.Record.t -> unit) ->
  ?switch:int ->
  ?vjobs:Vjob.t list -> Cluster.t ->
  Plan.t -> on_done:(record -> unit) -> unit
(** Event-driven execution (Entropy 2 / BtrPlace model): each action —
    or vjob suspend/resume group when [vjobs] is given — starts as soon
    as its claim fits the live free resources, honouring per-VM action
    precedence. Typically shortens the switch vs {!execute}; the
    record's [pools] field is 1. Supervision and journaling as in
    {!execute} (all journal records carry pool 0 and no
    [Pool_committed] is emitted); with [abort_on_failure], no further
    group starts after a terminal failure. *)
