(* Log source for the simulator. Enable with e.g.
   [Logs.set_reporter (Logs_fmt.reporter ()); Logs.Src.set_level
   Log.src (Some Logs.Debug)]. *)

let src = Logs.Src.create "entropy.sim" ~doc:"Discrete-event simulator"

include (val Logs.src_log src : Logs.LOG)
