(* Discrete-event simulation core: a clock and an event heap. Event
   callbacks may schedule further events. Cancellation uses generation
   tokens: a cancelled event stays queued but its callback is skipped. *)

module Obs = Entropy_obs.Obs
module Metrics = Entropy_obs.Metrics

let m_events = lazy (Metrics.counter "sim.events")

type event = { mutable cancelled : bool; run : unit -> unit }

type t = {
  mutable now : float;
  queue : event Heap.t;
  mutable executed : int;
}

let create () = { now = 0.; queue = Heap.create (); executed = 0 }

let now t = t.now
let pending t = Heap.length t.queue
let executed t = t.executed

type handle = event

let schedule t ~at run =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%.3f is in the past (now=%.3f)" at
         t.now);
  let ev = { cancelled = false; run } in
  Heap.push t.queue at ev;
  ev

let schedule_after t ~delay run = schedule t ~at:(t.now +. delay) run

let cancel (ev : handle) = ev.cancelled <- true

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, ev) ->
    t.now <- max t.now time;
    if not ev.cancelled then begin
      t.executed <- t.executed + 1;
      if !Obs.enabled then Metrics.incr (Lazy.force m_events);
      ev.run ()
    end;
    true

let run ?(until = infinity) ?(max_events = max_int) t =
  let rec go n =
    if n >= max_events then ()
    else
      match Heap.peek t.queue with
      | None -> ()
      | Some entry when entry.Heap.prio > until -> ()
      | Some _ ->
        ignore (step t);
        go (n + 1)
  in
  go 0
