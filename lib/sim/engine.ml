(* Discrete-event simulation core: a clock and an event heap. Event
   callbacks may schedule further events. Cancellation is lazy: a
   cancelled event stays queued until popped, but a shared counter keeps
   [pending] reporting live events only. *)

module Obs = Entropy_obs.Obs
module Metrics = Entropy_obs.Metrics

let m_events = lazy (Metrics.counter "sim.events")

type state = Queued | Cancelled | Done

type event = {
  mutable state : state;
  run : unit -> unit;
  queued_cancelled : int ref;  (* the engine's count of cancelled-but-queued *)
}

type t = {
  mutable now : float;
  queue : event Heap.t;
  mutable executed : int;
  queued_cancelled : int ref;
  mutable chooser : (int -> int) option;
      (* schedule hook: picks which of the n events tied at the next
         timestamp runs first (insertion order); None = FIFO *)
}

let create () =
  {
    now = 0.;
    queue = Heap.create ();
    executed = 0;
    queued_cancelled = ref 0;
    chooser = None;
  }

let set_chooser t chooser = t.chooser <- chooser

let now t = t.now
let pending t = Heap.length t.queue - !(t.queued_cancelled)
let cancelled t = !(t.queued_cancelled)
let executed t = t.executed

type handle = event

let schedule t ~at run =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%.3f is in the past (now=%.3f)" at
         t.now);
  let ev = { state = Queued; run; queued_cancelled = t.queued_cancelled } in
  Heap.push t.queue at ev;
  ev

let schedule_after t ~delay run = schedule t ~at:(t.now +. delay) run

(* Cancelling an already-run (or already-cancelled) event is a no-op, so
   late cancels cannot corrupt the pending count. *)
let cancel (ev : handle) =
  match ev.state with
  | Queued ->
    ev.state <- Cancelled;
    incr ev.queued_cancelled
  | Cancelled | Done -> ()

let step t =
  if Heap.is_empty t.queue then false
  else begin
    let time = Heap.top_prio t.queue in
    let ev =
      match t.chooser with
      | None -> Heap.pop_top t.queue
      | Some choose ->
        let n = Heap.tied_count t.queue in
        if n <= 1 then Heap.pop_top t.queue
        else Heap.pop_tied t.queue (choose n)
    in
    if time > t.now then t.now <- time;
    (match ev.state with
    | Cancelled -> decr t.queued_cancelled  (* drained *)
    | Done -> ()
    | Queued ->
      ev.state <- Done;
      t.executed <- t.executed + 1;
      if !Obs.enabled then Metrics.incr (Lazy.force m_events);
      ev.run ());
    true
  end

let run ?(until = infinity) ?(max_events = max_int) t =
  let rec go n =
    if
      n < max_events
      && (not (Heap.is_empty t.queue))
      && Heap.top_prio t.queue <= until
    then begin
      ignore (step t);
      go (n + 1)
    end
  in
  go 0
