(** Log source for the batch-scheduling baselines. Enable with e.g.
    [Logs.set_reporter (Logs_fmt.reporter ());
     Logs.Src.set_level Log.src (Some Logs.Debug)]. *)

val src : Logs.Src.t

include Logs.LOG
