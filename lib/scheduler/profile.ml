(* Free-node profile: a step function of available nodes over time,
   supporting "earliest interval where n nodes are free for d seconds"
   queries — the core primitive of reservation-based scheduling. *)

type t = {
  capacity : int;
  mutable breakpoints : (float * int) list;
  (* sorted by time; (t, free) means free nodes from t (inclusive)
     until the next breakpoint; implicit (0, capacity) start *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Profile.create: capacity <= 0";
  { capacity; breakpoints = [ (0., capacity) ] }

let capacity t = t.capacity

let free_at t time =
  let rec go free = function
    | [] -> free
    | (bt, bf) :: rest -> if bt <= time then go bf rest else free
  in
  go t.capacity t.breakpoints

(* Subtract [nodes] over [start, finish). *)
let allocate t ~start ~finish ~nodes =
  if finish <= start then invalid_arg "Profile.allocate: empty interval";
  let free_before_finish = free_at t finish in
  (* insert explicit breakpoints at start and finish *)
  let with_bp time free bps =
    if List.exists (fun (bt, _) -> bt = time) bps then bps
    else
      List.sort
        (fun (a, _) (b, _) -> Float.compare a b)
        ((time, free) :: bps)
  in
  let bps = with_bp start (free_at t start) t.breakpoints in
  let bps = with_bp finish free_before_finish bps in
  t.breakpoints <-
    List.map
      (fun (bt, bf) ->
        if bt >= start && bt < finish then (bt, bf - nodes) else (bt, bf))
      bps;
  if List.exists (fun (_, bf) -> bf < 0) t.breakpoints then
    invalid_arg "Profile.allocate: over-allocation"

(* Minimum free nodes over [start, finish). *)
let min_free t ~start ~finish =
  let m = ref (free_at t start) in
  List.iter
    (fun (bt, bf) -> if bt > start && bt < finish then m := min !m bf)
    t.breakpoints;
  !m

(* Earliest time >= after where [nodes] are free for [duration]. *)
let earliest t ~after ~nodes ~duration =
  if nodes > t.capacity then
    invalid_arg "Profile.earliest: request exceeds capacity";
  let candidates =
    after :: List.filter_map
               (fun (bt, _) -> if bt > after then Some bt else None)
               t.breakpoints
  in
  let fits start = min_free t ~start ~finish:(start +. duration) >= nodes in
  let rec go = function
    | [] ->
      (* no candidate fits: fall back to the trailing all-free segment.
         Past the last breakpoint every allocation has finished, so
         [capacity] nodes are free there and the checked
         [nodes <= capacity] precondition makes it always admissible. *)
      List.fold_left (fun acc (bt, _) -> Float.max acc bt) after t.breakpoints
    | c :: rest -> if fits c then c else go rest
  in
  go (List.sort Float.compare candidates)
