(* Log source for the batch-scheduling baselines. Enable with e.g.
   [Logs.set_reporter (Logs_fmt.reporter ()); Logs.Src.set_level
   Log.src (Some Logs.Debug)]. *)

let src = Logs.Src.create "entropy.scheduler" ~doc:"RMS baselines"

include (val Logs.src_log src : Logs.LOG)
