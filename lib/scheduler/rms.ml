(* Reservation-based scheduling policies of traditional RMS (section
   2.1): strict First-Come-First-Served, and FCFS with backfilling.

   Reservations are rigid: a job occupies its nodes for the whole
   requested walltime (the slot), whatever its actual duration — the
   static-allocation behaviour the paper criticises. With
   [release:`Actual], slots are instead freed at completion time, an
   oracle variant used for ablations.

   With simultaneous arrivals (the paper's section 5.2 workload), EASY
   and conservative backfilling coincide: both reduce to in-order
   earliest-fit with out-of-order starts. They are exposed separately
   for clarity and for staggered-arrival scenarios. *)

type release = Walltime | Actual

type schedule = {
  placements : Job.placement list;  (* in job order *)
  makespan : float;                 (* last slot end or completion *)
  capacity : int;
}

let occupancy release (job : Job.t) =
  match release with
  | Walltime -> job.Job.walltime
  | Actual -> Float.min job.Job.actual job.Job.walltime

let finish_time release p =
  match release with
  | Walltime -> Job.slot_end p
  | Actual -> (
    match Job.completion p with
    | Some t -> t
    | None -> Job.slot_end p (* killed at the end of the slot *))

let mk_schedule release capacity placements =
  {
    placements = List.rev placements;
    makespan =
      List.fold_left
        (fun acc p -> Float.max acc (finish_time release p))
        0. placements;
    capacity;
  }

(* Strict FCFS: jobs start in arrival order, no overtaking. *)
let fcfs ?(release = Walltime) ~capacity jobs =
  let profile = Profile.create ~capacity in
  let jobs = List.sort Job.compare_fcfs jobs in
  let placements, _ =
    List.fold_left
      (fun (acc, prev_start) (job : Job.t) ->
        let after = Float.max job.Job.arrival prev_start in
        let duration = occupancy release job in
        let start =
          Profile.earliest profile ~after ~nodes:job.Job.nodes_required
            ~duration
        in
        Profile.allocate profile ~start ~finish:(start +. duration)
          ~nodes:job.Job.nodes_required;
        ({ Job.job; start } :: acc, start))
      ([], 0.) jobs
  in
  mk_schedule release capacity placements

(* Backfilling: jobs are reserved in arrival order at their earliest
   fit; a later job may start before an earlier one when holes allow. *)
let backfill ?(release = Walltime) ~capacity jobs =
  let profile = Profile.create ~capacity in
  let jobs = List.sort Job.compare_fcfs jobs in
  let placements =
    List.fold_left
      (fun acc (job : Job.t) ->
        let duration = occupancy release job in
        let start =
          Profile.earliest profile ~after:job.Job.arrival
            ~nodes:job.Job.nodes_required ~duration
        in
        Profile.allocate profile ~start ~finish:(start +. duration)
          ~nodes:job.Job.nodes_required;
        { Job.job; start } :: acc)
      [] jobs
  in
  mk_schedule release capacity placements

let easy = backfill
let conservative = backfill

(* Lower bound with ideal preemption: jobs can run partially and move
   freely (what cluster-wide context switches enable, Figure 1 (c)):
   total work area over capacity, and no job shorter than itself. *)
let preemptive_lower_bound ~capacity jobs =
  let area =
    List.fold_left
      (fun acc (j : Job.t) ->
        acc +. (float_of_int j.Job.nodes_required *. j.Job.actual))
      0. jobs
  in
  let longest =
    List.fold_left (fun acc (j : Job.t) -> Float.max acc j.Job.actual) 0. jobs
  in
  Float.max (area /. float_of_int capacity) longest

(* -- event-driven (online) variant -------------------------------------------

   The profile-based schedulers above decide everything at once, using
   either walltimes (rigid) or an oracle of actual durations. A real RMS
   is *online*: it frees nodes the moment a job exits (when the job was
   within its walltime) and only then reconsiders the queue. This
   event-driven simulation captures that: at every job arrival or
   completion, scan the queue in order and start every job that fits
   ([backfill:true]) or the longest feasible prefix ([backfill:false],
   strict FCFS). *)

let simulate ?(backfill = true) ~capacity jobs =
  let queue = ref (List.sort Job.compare_fcfs jobs) in
  let running = ref [] in (* (finish_time, placement) *)
  let placements = ref [] in
  let free = ref capacity in
  let now = ref 0. in
  let makespan = ref 0. in
  let start_job (job : Job.t) =
    let occupancy = Float.min job.Job.actual job.Job.walltime in
    let finish = !now +. occupancy in
    Log.debug (fun m ->
        m "start job %d (%s): %d nodes at t=%.0f until t=%.0f" job.Job.id
          job.Job.name job.Job.nodes_required !now finish);
    free := !free - job.Job.nodes_required;
    running := (finish, { Job.job; start = !now }) :: !running;
    placements := { Job.job; start = !now } :: !placements;
    if finish > !makespan then makespan := finish
  in
  let try_start () =
    let rec scan blocked = function
      | [] -> List.rev blocked
      | (job : Job.t) :: rest ->
        if job.Job.arrival > !now then scan (job :: blocked) rest
        else if job.Job.nodes_required <= !free then begin
          start_job job;
          scan blocked rest
        end
        else if backfill then scan (job :: blocked) rest
        else List.rev_append blocked (job :: rest) (* strict: stop here *)
    in
    queue := scan [] !queue
  in
  let next_event () =
    let completion =
      List.fold_left
        (fun acc (finish, _) ->
          match acc with
          | None -> Some finish
          | Some f -> Some (Float.min f finish))
        None !running
    in
    let arrival =
      List.fold_left
        (fun acc (j : Job.t) ->
          if j.Job.arrival > !now then
            match acc with
            | None -> Some j.Job.arrival
            | Some a -> Some (Float.min a j.Job.arrival)
          else acc)
        None !queue
    in
    match (completion, arrival) with
    | None, None -> None
    | Some t, None | None, Some t -> Some t
    | Some a, Some b -> Some (Float.min a b)
  in
  try_start ();
  let rec loop () =
    if !queue <> [] || !running <> [] then
      match next_event () with
      | None -> () (* queued jobs that can never start *)
      | Some t ->
        now := t;
        let done_, still = List.partition (fun (f, _) -> f <= !now) !running in
        running := still;
        List.iter
          (fun (_, p) -> free := !free + p.Job.job.Job.nodes_required)
          done_;
        try_start ();
        loop ()
  in
  loop ();
  {
    placements = List.rev !placements;
    makespan = !makespan;
    capacity;
  }

(* Nodes occupied at a given time. *)
let used_nodes ?(release = Walltime) schedule time =
  List.fold_left
    (fun acc (p : Job.placement) ->
      let finish = finish_time release p in
      if p.Job.start <= time && time < finish then
        acc + p.Job.job.Job.nodes_required
      else acc)
    0 schedule.placements
