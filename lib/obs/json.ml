(* A minimal JSON value type with a printer and a recursive-descent
   parser. The observability exports (Chrome trace events, the metrics
   dump, the Figure 13 series) are built as [t] values and printed from
   here, and the test suite re-parses the emitted files to check that
   every export round-trips. No third-party JSON dependency: the
   subset implemented (no surrogate-pair \u escapes beyond the BMP) is
   exactly what the exports produce. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* -- printing ------------------------------------------------------------- *)

let escape_to b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Floats must stay valid JSON: no "nan"/"inf" tokens, and a bare
   integer-looking literal is fine (the parser reads it back as Int,
   numeric comparisons in the tests go through [number]). *)
let float_to_string f =
  if Float.is_nan f then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.abs f = Float.infinity then
    if f > 0. then "1e308" else "-1e308"
  else Printf.sprintf "%.9g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_to_string f)
  | String s -> escape_to b s
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_to b k;
        Buffer.add_char b ':';
        to_buffer b v)
      fields;
    Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 1024 in
  to_buffer b t;
  Buffer.contents b

(* -- parsing -------------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> error "offset %d: expected %c, found %c" c.pos ch x
  | None -> error "offset %d: expected %c, found end of input" c.pos ch

let parse_literal c lit value =
  let n = String.length lit in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = lit
  then begin
    c.pos <- c.pos + n;
    value
  end
  else error "offset %d: invalid literal" c.pos

let parse_string_raw c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
      | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
      | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
      | Some 'b' -> advance c; Buffer.add_char b '\b'; go ()
      | Some 'f' -> advance c; Buffer.add_char b '\012'; go ()
      | Some ('"' | '\\' | '/') ->
        Buffer.add_char b (Option.get (peek c));
        advance c;
        go ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then error "truncated \\u escape";
        let hex = String.sub c.src c.pos 4 in
        c.pos <- c.pos + 4;
        let code =
          try int_of_string ("0x" ^ hex)
          with Failure _ -> error "invalid \\u escape %S" hex
        in
        (* encode the code point as UTF-8 (BMP only, which covers
           everything our own printer emits) *)
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end;
        go ()
      | _ -> error "offset %d: invalid escape" c.pos)
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    match peek c with Some ch when is_num_char ch -> true | _ -> false
  do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error "offset %d: invalid number %S" start s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error "unexpected end of input"
  | Some 'n' -> parse_literal c "null" Null
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some '"' -> String (parse_string_raw c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> error "offset %d: expected , or ] in array" c.pos
      in
      List (items [])
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else
      let rec fields acc =
        skip_ws c;
        let k = parse_string_raw c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> error "offset %d: expected , or } in object" c.pos
      in
      Obj (fields [])
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error "offset %d: unexpected character %c" c.pos ch

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then
    error "offset %d: trailing characters after JSON value" c.pos;
  v

(* -- accessors (for the tests and the experiment drivers) ----------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None

let number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let string_value = function String s -> Some s | _ -> None
