(** Timed-event recording into a ring buffer, exported as Chrome
    trace-event JSON (Perfetto / chrome://tracing).

    This is the raw recording layer: it always records when called.
    Production code goes through {!Obs}, which gates every call on
    [Obs.enabled]. *)

type arg = I of int | F of float | S of string | B of bool

type kind = Complete | Instant

type event = {
  name : string;
  cat : string;
  kind : kind;
  ts_us : float;  (** event (or span start) time, microseconds *)
  dur_us : float; (** span duration; 0 for instants *)
  tid : int;
  args : (string * arg) list;
}

val tid_main : int
(** Wall-clock track: decision loop, CP search, planner. *)

val tid_sim : int
(** Simulated-time track: executor actions stamped with the
    discrete-event clock. *)

val set_capacity : int -> unit
(** Resize (and clear) the ring buffer. Default capacity 65536. *)

val reset : unit -> unit
(** Drop all recorded events and restart the clock origin. *)

val now_us : unit -> float
(** Microseconds since the last [reset] (wall clock). *)

val record : event -> unit

val complete :
  ?cat:string -> ?tid:int -> ?args:(string * arg) list -> name:string ->
  ts_us:float -> dur_us:float -> unit -> unit

val instant :
  ?cat:string -> ?tid:int -> ?args:(string * arg) list -> ?ts_us:float ->
  string -> unit

val events : unit -> event list
(** Surviving events in recording order. *)

val recorded : unit -> int
(** Total events ever recorded since the last reset. *)

val dropped : unit -> int
(** Events overwritten by ring-buffer wrap-around. Also published as
    the gauge [obs.trace.dropped] the first time an overwrite occurs,
    so exports carry the truncation alongside the data it skews. *)

val export : ?threads:(int * string) list -> event list -> Json.t
(** Chrome trace-event document for an arbitrary event list, sorted
    chronologically, with one thread-name metadata record per
    [(tid, name)] pair. [to_json] is this over the ring buffer. *)

val to_json : unit -> Json.t
(** [{"traceEvents": [...]}] — spans as ["ph":"X"] complete events,
    instants as ["ph":"i"], plus thread-name metadata for both tracks. *)

val write : string -> unit

val aggregate : unit -> (string * int * float) list
(** Per-span-name [(name, count, total_us)], sorted by decreasing total
    time — the per-phase table behind [entropyctl profile]. *)
