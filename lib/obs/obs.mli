(** The observability gate: tracing spans + metrics, behind one flag.

    Instrumented code checks [!enabled] before touching {!Trace} or
    {!Metrics}; with the flag off (the default) every site costs one
    load and one predictable branch, and nothing is recorded. *)

val enabled : bool ref
(** The single gate. Set it before the run to instrument, [reset] to
    drop whatever a previous run recorded. *)

val reset : unit -> unit
(** Clear the trace ring buffer (restarting its clock origin) and zero
    every registered metric. *)

val span :
  ?cat:string -> ?args:(string * Trace.arg) list -> name:string ->
  (unit -> 'a) -> 'a
(** [span ~name f] runs [f] and, when enabled, records a wall-clock
    complete event around it ([f]'s exceptions propagate; the span is
    still recorded, tagged [raised]). When disabled, [span] is [f ()]. *)

val instant :
  ?cat:string -> ?args:(string * Trace.arg) list -> string -> unit
(** Zero-duration event on the wall-clock track. *)

val sim_span :
  ?args:(string * Trace.arg) list -> name:string -> at_s:float ->
  dur_s:float -> unit -> unit
(** Complete event on the simulated-time track: [at_s]/[dur_s] are in
    simulated seconds (the discrete-event clock). *)

val sim_instant :
  ?args:(string * Trace.arg) list -> at_s:float -> string -> unit

val write_trace : string -> unit
(** Write the Chrome trace-event JSON ({!Trace.write}). *)

val write_metrics : string -> unit
(** Write the metrics registry: Prometheus text format when the path
    ends in [.prom], JSON otherwise. *)
