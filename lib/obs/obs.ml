(* The observability gate. Every instrumentation site in the hot paths
   (CP store and search, planner, simulator) compiles to a single
   predictable branch on [!enabled] when tracing is off — the same
   discipline as [Var.read_hook]. When on, spans go to the [Trace] ring
   buffer and counters/histograms to the [Metrics] registry. *)

let enabled = ref false

let reset () =
  Trace.reset ();
  Metrics.reset ()

(* Spans: recorded as one Chrome [ph:"X"] complete event at exit, so a
   span costs two clock reads and one ring-buffer store. A raising [f]
   still gets its span (tagged ["raised"]) — exceptions are control flow
   in the CP search (Inconsistent), not anomalies. *)
let span ?cat ?args ~name f =
  if not !enabled then f ()
  else begin
    let t0 = Trace.now_us () in
    match f () with
    | r ->
      Trace.complete ?cat ?args ~name ~ts_us:t0 ~dur_us:(Trace.now_us () -. t0) ();
      r
    | exception e ->
      let args = ("raised", Trace.B true) :: Option.value ~default:[] args in
      Trace.complete ?cat ~args ~name ~ts_us:t0
        ~dur_us:(Trace.now_us () -. t0) ();
      raise e
  end

let instant ?cat ?args name = if !enabled then Trace.instant ?cat ?args name

(* Simulated-time events: stamped with the discrete-event clock (seconds
   since simulation start) on the [tid_sim] track. *)

let sim_span ?(args = []) ~name ~at_s ~dur_s () =
  if !enabled then
    Trace.complete ~cat:"sim" ~tid:Trace.tid_sim ~args ~name
      ~ts_us:(at_s *. 1e6) ~dur_us:(dur_s *. 1e6) ()

let sim_instant ?args ~at_s name =
  if !enabled then
    Trace.instant ~cat:"sim" ~tid:Trace.tid_sim ?args ~ts_us:(at_s *. 1e6) name

let write_trace path = Trace.write path

let write_metrics path =
  if Filename.check_suffix path ".prom" then Metrics.write_prometheus path
  else Metrics.write_json path
