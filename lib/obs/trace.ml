(* Trace-event recording: a fixed-capacity ring buffer of timed events,
   exported in the Chrome trace-event JSON format (loadable in Perfetto
   or chrome://tracing).

   Recording is append-only into a preallocated array with a single
   write index — "lock-free enough" for our single-domain runtime: one
   array store and one increment per event, no allocation beyond the
   event record itself, and when the buffer wraps the oldest events are
   silently overwritten ([dropped] reports how many).

   Two tracks are exported: [tid_main] carries wall-clock spans of the
   decision loop (observe / decide / plan, CP model build and search),
   [tid_sim] carries events stamped in *simulated* time by the
   discrete-event executor, so a trace shows the planned switch next to
   the CP effort that produced it. *)

type arg = I of int | F of float | S of string | B of bool

type kind = Complete | Instant

type event = {
  name : string;
  cat : string;
  kind : kind;
  ts_us : float;  (* event (or span start) time, microseconds *)
  dur_us : float; (* span duration; 0 for instants *)
  tid : int;
  args : (string * arg) list;
}

let tid_main = 1
let tid_sim = 2

let dummy =
  { name = ""; cat = ""; kind = Instant; ts_us = 0.; dur_us = 0.; tid = 0;
    args = [] }

let default_capacity = 65_536

type buffer = {
  mutable ring : event array;
  mutable next : int;     (* next write position *)
  mutable count : int;    (* total events ever recorded *)
  mutable epoch : float;  (* wall-clock origin of ts_us *)
}

let buf =
  { ring = [||]; next = 0; count = 0; epoch = Unix.gettimeofday () }

let ensure_ring () =
  if Array.length buf.ring = 0 then buf.ring <- Array.make default_capacity dummy

let set_capacity n =
  if n <= 0 then invalid_arg "Trace.set_capacity: capacity must be positive";
  buf.ring <- Array.make n dummy;
  buf.next <- 0;
  buf.count <- 0

let reset () =
  if Array.length buf.ring > 0 then Array.fill buf.ring 0 (Array.length buf.ring) dummy;
  buf.next <- 0;
  buf.count <- 0;
  buf.epoch <- Unix.gettimeofday ()

let now_us () = (Unix.gettimeofday () -. buf.epoch) *. 1e6

(* Wrap-around overwrites are surfaced as a gauge so downstream
   consumers (explain, profile) can warn that attribution may be
   skewed; the handle is resolved once and only touched when an
   overwrite actually happens, keeping the non-dropping path at one
   store and one increment. *)
let drop_gauge = lazy (Metrics.gauge "obs.trace.dropped")

let record ev =
  ensure_ring ();
  buf.ring.(buf.next) <- ev;
  buf.next <- (buf.next + 1) mod Array.length buf.ring;
  buf.count <- buf.count + 1;
  if buf.count > Array.length buf.ring then
    Metrics.set (Lazy.force drop_gauge)
      (float_of_int (buf.count - Array.length buf.ring))

let complete ?(cat = "obs") ?(tid = tid_main) ?(args = []) ~name ~ts_us
    ~dur_us () =
  record { name; cat; kind = Complete; ts_us; dur_us; tid; args }

let instant ?(cat = "obs") ?(tid = tid_main) ?(args = []) ?ts_us name =
  let ts_us = match ts_us with Some t -> t | None -> now_us () in
  record { name; cat; kind = Instant; ts_us; dur_us = 0.; tid; args }

let recorded () = buf.count

let dropped () =
  if Array.length buf.ring = 0 then 0
  else max 0 (buf.count - Array.length buf.ring)

(* Events in recording order (oldest surviving first). *)
let events () =
  let cap = Array.length buf.ring in
  if cap = 0 || buf.count = 0 then []
  else begin
    let n = min buf.count cap in
    let first = if buf.count <= cap then 0 else buf.next in
    List.init n (fun i -> buf.ring.((first + i) mod cap))
  end

(* -- export --------------------------------------------------------------- *)

let arg_to_json = function
  | I i -> Json.Int i
  | F f -> Json.Float f
  | S s -> Json.String s
  | B b -> Json.Bool b

let event_to_json ev =
  let base =
    [
      ("name", Json.String ev.name);
      ("cat", Json.String ev.cat);
      ( "ph",
        Json.String (match ev.kind with Complete -> "X" | Instant -> "i") );
      ("ts", Json.Float ev.ts_us);
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.tid);
    ]
  in
  let dur =
    match ev.kind with
    | Complete -> [ ("dur", Json.Float ev.dur_us) ]
    | Instant -> [ ("s", Json.String "t") ]
  in
  let args =
    match ev.args with
    | [] -> []
    | l -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) l)) ]
  in
  Json.Obj (base @ dur @ args)

let thread_meta tid name =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

(* Chrome trace-event document for an arbitrary event list (the ring
   buffer's or an externally reconstructed one, e.g. the flight
   recorder's gantt view). *)
let export ?(threads = []) evs =
  (* chronological order: trace viewers require parents (recorded at
     span end, so later in the ring) to sort before their children; at
     equal timestamps the longer span is the parent and goes first *)
  let evs =
    List.stable_sort
      (fun a b ->
        match Float.compare a.ts_us b.ts_us with
        | 0 -> Float.compare b.dur_us a.dur_us
        | c -> c)
      evs
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (List.map (fun (tid, name) -> thread_meta tid name) threads
          @ List.map event_to_json evs) );
      ("displayTimeUnit", Json.String "ms");
    ]

let to_json () =
  match
    export
      ~threads:
        [
          (tid_main, "control loop (wall clock)");
          (tid_sim, "cluster (simulated time)");
        ]
      (events ())
  with
  | Json.Obj fields ->
    Json.Obj (fields @ [ ("droppedEvents", Json.Int (dropped ())) ])
  | j -> j

let write path =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json ()));
  output_char oc '\n';
  close_out oc

(* Per-name aggregation of complete events: count and total duration —
   the data behind [entropyctl profile]'s per-phase table. *)
let aggregate () =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      match ev.kind with
      | Instant -> ()
      | Complete ->
        let count, total =
          Option.value ~default:(0, 0.) (Hashtbl.find_opt tbl ev.name)
        in
        Hashtbl.replace tbl ev.name (count + 1, total +. ev.dur_us))
    (events ());
  Hashtbl.fold (fun name (count, total) acc -> (name, count, total) :: acc)
    tbl []
  |> List.sort (fun (_, _, t1) (_, _, t2) -> Float.compare t2 t1)
