(** Metrics registry: counters, gauges, log-scaled histograms.

    Metrics are registered by name on first use; later lookups return
    the same object, so instrumentation sites can cache the handle.
    {!reset} zeroes every registered metric but keeps the handles valid.

    Like {!Trace}, this is the raw layer: it records whenever called.
    Production instrumentation guards every update on [Obs.enabled]. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find-or-register. Raises [Invalid_argument] if [name] is already
    registered as a different metric type. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative increment: counters are
    monotone. *)

val counter_value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Raise the gauge to [v] if above its current value: a high-water
    mark (peak queue depth, worst decision lag). [reset] zeroes it like
    any gauge. *)

val gauge_value : gauge -> float

val histogram : string -> histogram

val observe : histogram -> float -> unit
(** One [log2] plus one array increment: the value lands in a log-scaled
    bucket (8 buckets per doubling). Count/sum/min/max stay exact. *)

val observed : histogram -> int
val sum : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h 0.99] estimates the p99 from the log-scaled buckets;
    relative error is bounded by the bucket width (~9%), and the result
    is clamped to the exact [min, max] envelope. Degenerate shapes are
    exact: 0 on an empty histogram, the sample itself on a single-sample
    histogram, and [min] when the rank falls in bucket 0 (observations
    [<= 0], which have no midpoint on the log scale). *)

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)

val counters : unit -> (string * int) list
(** All registered counters with their values, sorted by name. *)

val to_json : unit -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {count, sum, min, max, p50, p95, p99}}}], names sorted. *)

val to_prometheus : unit -> string
(** Prometheus text exposition format: counters and gauges as-is,
    histograms as summaries with p50/p95/p99 quantiles. Metric names are
    sanitized ([.] becomes [_]). *)

val write_json : string -> unit
val write_prometheus : string -> unit
