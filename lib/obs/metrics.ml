(* Process-wide metrics registry: counters, gauges and log-scaled
   histograms, exportable as JSON and as Prometheus text format.

   Metrics are registered by name on first use and the same object is
   returned on every later lookup, so instrumentation sites can cache
   the handle (one record-field update per event afterwards).
   [reset] zeroes every registered metric but keeps the objects alive:
   cached handles stay valid across resets.

   Histograms are log-scaled: fixed buckets at [buckets_per_doubling]
   per factor of two, so an observation costs one [log2] and one array
   increment, and quantile estimates carry a bounded relative error of
   [2^(1/buckets_per_doubling) - 1] (~9% at 8 buckets per doubling).
   Count, sum, min and max are tracked exactly. *)

type counter = { c_name : string; mutable count : int }

type gauge = { g_name : string; mutable value : float }

let buckets_per_doubling = 8

(* indices cover 2^-16 .. 2^48 (bucket 0 also absorbs <= 0) *)
let bucket_count = 512
let zero_bucket = 128

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  buckets : int array;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let mismatch name = invalid_arg ("Metrics: " ^ name ^ " already registered with another type")

let find_or_add name mk =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
    let m = mk () in
    Hashtbl.add registry name m;
    m

(* -- counters ------------------------------------------------------------- *)

let counter name =
  match find_or_add name (fun () -> Counter { c_name = name; count = 0 }) with
  | Counter c -> c
  | Gauge _ | Histogram _ -> mismatch name

let incr c = c.count <- c.count + 1

let add c n =
  if n < 0 then invalid_arg ("Metrics.add: counter " ^ c.c_name ^ " cannot decrease");
  c.count <- c.count + n

let counter_value c = c.count

(* -- gauges --------------------------------------------------------------- *)

let gauge name =
  match find_or_add name (fun () -> Gauge { g_name = name; value = 0. }) with
  | Gauge g -> g
  | Counter _ | Histogram _ -> mismatch name

let set g v = g.value <- v

(* high-water mark: peak queue depth, worst decision lag *)
let set_max g v = if v > g.value then g.value <- v

let gauge_value g = g.value

(* -- histograms ----------------------------------------------------------- *)

let histogram name =
  match
    find_or_add name (fun () ->
        Histogram
          {
            h_name = name;
            n = 0;
            sum = 0.;
            vmin = infinity;
            vmax = neg_infinity;
            buckets = Array.make bucket_count 0;
          })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ -> mismatch name

let bucket_of v =
  if v <= 0. then 0
  else begin
    let idx =
      zero_bucket
      + int_of_float
          (Float.floor (Float.log2 v *. float_of_int buckets_per_doubling))
    in
    if idx < 0 then 0 else if idx >= bucket_count then bucket_count - 1 else idx
  end

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  let i = bucket_of v in
  h.buckets.(i) <- h.buckets.(i) + 1

let observed h = h.n
let sum h = h.sum

(* Geometric midpoint of the bucket holding the rank, clamped to the
   exact [vmin, vmax] envelope. Degenerate shapes are answered exactly
   rather than interpolated: an empty histogram reports 0, a
   single-sample histogram reports the sample, and bucket 0 — which
   absorbs every observation <= 0 and so has no geometric midpoint on
   the log scale — reports [vmin]. *)
let quantile h q =
  if h.n = 0 then 0.
  else if h.n = 1 then h.vmin
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.n))) in
    let rec go i cum =
      if i >= bucket_count then h.vmax
      else begin
        let cum = cum + h.buckets.(i) in
        if cum >= rank then begin
          if i = 0 then h.vmin
          else begin
            let lo =
              Float.exp2
                (float_of_int (i - zero_bucket)
                /. float_of_int buckets_per_doubling)
            in
            let mid =
              lo *. Float.exp2 (0.5 /. float_of_int buckets_per_doubling)
            in
            Float.min (Float.max mid h.vmin) h.vmax
          end
        end
        else go (i + 1) cum
      end
    in
    go 0 0
  end

(* -- registry-wide operations --------------------------------------------- *)

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g -> g.value <- 0.
      | Histogram h ->
        h.n <- 0;
        h.sum <- 0.;
        h.vmin <- infinity;
        h.vmax <- neg_infinity;
        Array.fill h.buckets 0 bucket_count 0)
    registry

let sorted_metrics () =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () =
  List.filter_map
    (function name, Counter c -> Some (name, c.count) | _ -> None)
    (sorted_metrics ())

(* -- JSON export ----------------------------------------------------------- *)

let histogram_json h =
  let q p = Json.Float (quantile h p) in
  Json.Obj
    [
      ("count", Json.Int h.n);
      ("sum", Json.Float h.sum);
      ("min", Json.Float (if h.n = 0 then 0. else h.vmin));
      ("max", Json.Float (if h.n = 0 then 0. else h.vmax));
      ("p50", q 0.50);
      ("p95", q 0.95);
      ("p99", q 0.99);
    ]

let to_json () =
  let metrics = sorted_metrics () in
  let pick f = List.filter_map f metrics in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (pick (function
            | name, Counter c -> Some (name, Json.Int c.count)
            | _ -> None)) );
      ( "gauges",
        Json.Obj
          (pick (function
            | name, Gauge g -> Some (name, Json.Float g.value)
            | _ -> None)) );
      ( "histograms",
        Json.Obj
          (pick (function
            | name, Histogram h -> Some (name, histogram_json h)
            | _ -> None)) );
    ]

(* -- Prometheus text export ------------------------------------------------ *)

let sanitize name =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ch
      | _ -> '_')
    name

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let to_prometheus () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      let pname = sanitize name in
      match m with
      | Counter c ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" pname);
        Buffer.add_string b (Printf.sprintf "%s %d\n" pname c.count)
      | Gauge g ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" pname);
        Buffer.add_string b (Printf.sprintf "%s %s\n" pname (prom_float g.value))
      | Histogram h ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" pname);
        List.iter
          (fun q ->
            Buffer.add_string b
              (Printf.sprintf "%s{quantile=\"%g\"} %s\n" pname q
                 (prom_float (quantile h q))))
          [ 0.5; 0.95; 0.99 ];
        Buffer.add_string b (Printf.sprintf "%s_sum %s\n" pname (prom_float h.sum));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" pname h.n))
    (sorted_metrics ());
  Buffer.contents b

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let write_json path = write_file path (Json.to_string (to_json ()) ^ "\n")
let write_prometheus path = write_file path (to_prometheus ())
