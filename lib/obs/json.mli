(** Minimal JSON values: printer + parser for the observability exports.

    Every file the obs layer writes (traces, metrics, time series) is
    built as a [t] and printed here, and can be re-read with [parse] —
    the test suite uses that to check the exports round-trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

val parse : string -> t
(** Raises [Parse_error] on malformed input. *)

val member : string -> t -> t option
(** Field of an object, [None] on a missing field or a non-object. *)

val to_list : t -> t list option

val number : t -> float option
(** [Int] and [Float] both read as numbers. *)

val string_value : t -> string option
