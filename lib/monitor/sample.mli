(** A monitoring sample: per-VM CPU consumption at an instant. *)

open Entropy_core

type t

val make : time:float -> cpu:int array -> t
(** [cpu] is copied: later caller mutation does not alter the sample. *)

val time : t -> float

val cpu : t -> Vm.id -> int
(** Per-VM CPU consumption in hundredths of a core. Raises
    [Invalid_argument] on an unknown VM id. *)

val vm_count : t -> int
val to_demand : t -> Demand.t
val pp : Format.formatter -> t -> unit
