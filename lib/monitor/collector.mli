(** The monitoring service head (Ganglia stand-in): polls raw per-VM CPU
    readings and serves smoothed demand vectors to the control loop. *)

open Entropy_core

type source = unit -> float * int array
(** A reading: current time and per-VM CPU consumption. *)

type t

val create : ?capacity:int -> ?smoothing_span:float -> source -> t
(** [smoothing_span] (default 10 s) is the accumulation window the paper
    reports before each loop iteration. *)

val poll : t -> unit
(** Take one reading from the source. Readings that fail validation —
    a non-finite timestamp, a timestamp strictly before the latest
    sample's (reordered delivery or a clock jump; equal timestamps are
    admitted), or any negative CPU value — are dropped whole: they never
    enter the smoothing window. Drops are counted ({!dropped}, and the
    [monitor.dropped_samples] counter when observability is on). *)

val polls : t -> int

(** Readings rejected by validation so far. *)
val dropped : t -> int
val history : t -> History.t

val demand : t -> Demand.t
(** Smoothed per-VM CPU demand (window average, latest reading as
    fallback). Polls once when the history is empty. *)
