(** Bounded sample history. *)

open Entropy_core

type t

val create : ?capacity:int -> unit -> t
(** Keeps the [capacity] (default 128) most recent samples. Raises
    [Invalid_argument] when [capacity <= 0]. *)

val add : t -> Sample.t -> unit
(** Appends; the oldest sample is dropped once over capacity. *)

val latest : t -> Sample.t option
val length : t -> int
val newest_first : t -> Sample.t list

val window : t -> now:float -> span:float -> Sample.t list
(** Samples no older than [now -. span], newest first. *)

val average_cpu : t -> now:float -> span:float -> Vm.id -> int option
(** Mean CPU of a VM over the window; latest sample when empty. *)
