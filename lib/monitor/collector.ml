(* The monitoring service head (Ganglia stand-in). A collector polls a
   source of raw per-VM CPU readings, keeps a bounded history, and
   answers the control loop's observation requests with a smoothed
   demand vector.

   The paper reports that Entropy accumulates fresh monitoring data for
   about 10 seconds before each iteration; [smoothing_span] models that
   accumulation window. *)

open Entropy_core
module Obs = Entropy_obs.Obs
module Metrics = Entropy_obs.Metrics

let m_dropped = lazy (Metrics.counter "monitor.dropped_samples")

type source = unit -> float * int array
(* current time, per-VM CPU consumption *)

type t = {
  source : source;
  history : History.t;
  smoothing_span : float;
  mutable polls : int;
  mutable dropped : int;
}

let create ?(capacity = 128) ?(smoothing_span = 10.) source =
  {
    source;
    history = History.create ~capacity ();
    smoothing_span;
    polls = 0;
    dropped = 0;
  }

(* A real monitoring bus delivers garbage now and then: readings with a
   clock that jumped backwards (reordered delivery, a resynced NTP
   source) or impossible CPU values. Admitting them would corrupt the
   smoothing window the decisions are made from, so validation rejects
   the sample whole. Equal timestamps are fine — several services
   legitimately poll within the same instant. *)
let valid t ~time ~cpu =
  Float.is_finite time
  && (match History.latest t.history with
     | Some latest -> time >= Sample.time latest
     | None -> true)
  && Array.for_all (fun c -> c >= 0) cpu

let poll t =
  let time, cpu = t.source () in
  t.polls <- t.polls + 1;
  if valid t ~time ~cpu then History.add t.history (Sample.make ~time ~cpu)
  else begin
    t.dropped <- t.dropped + 1;
    if !Obs.enabled then Metrics.incr (Lazy.force m_dropped)
  end

let polls t = t.polls
let dropped t = t.dropped
let history t = t.history

(* Smoothed demand: per-VM average over the accumulation window. An
   empty history triggers an immediate poll. *)
let demand t =
  if History.latest t.history = None then poll t;
  match History.latest t.history with
  | None -> Demand.make ~vm_count:0 ~default:0
  | Some latest ->
    let now = Sample.time latest in
    let vm_count = Sample.vm_count latest in
    Demand.of_fn ~vm_count (fun vm_id ->
        match
          History.average_cpu t.history ~now ~span:t.smoothing_span vm_id
        with
        | Some v -> v
        | None -> 0)
