(* Open-arrival submission process for the online daemon: a Poisson
   base stream modulated by an on/off burst process (a two-state
   Markov-modulated Poisson process). Calm periods draw inter-arrival
   gaps at [base_rate], burst periods at [burst_rate]; the periods
   themselves have exponential durations. Exponential memorylessness
   lets each phase boundary simply re-draw the next gap at the new
   rate.

   The process is deterministic in the seed: the daemon, its resume
   path, and the test harness can all regenerate the same schedule. *)

type spec = {
  seed : int;
  count : int;
  base_rate : float;    (* arrivals/s during calm periods *)
  burst_rate : float;   (* arrivals/s during bursts *)
  mean_calm_s : float;  (* mean calm-period duration *)
  mean_burst_s : float; (* mean burst duration *)
}

let default_spec =
  {
    seed = 0;
    count = 100;
    base_rate = 1. /. 60.;
    burst_rate = 1. /. 4.;
    mean_calm_s = 900.;
    mean_burst_s = 120.;
  }

type arrival = { at_s : float; burst : bool }

let check spec =
  if spec.count < 0 then invalid_arg "Arrivals: negative count";
  if spec.base_rate <= 0. || spec.burst_rate <= 0. then
    invalid_arg "Arrivals: rates must be positive";
  if spec.mean_calm_s <= 0. || spec.mean_burst_s <= 0. then
    invalid_arg "Arrivals: phase durations must be positive"

(* exponential with mean [1/rate]; [Random.State.float] is in [0,1) so
   the argument of [log] stays in (0,1] *)
let exp_sample rng rate = -.log (1. -. Random.State.float rng 1.) /. rate

let generate spec =
  check spec;
  let rng = Random.State.make [| spec.seed; 0xa441 |] in
  let rate burst = if burst then spec.burst_rate else spec.base_rate in
  let mean burst = if burst then spec.mean_burst_s else spec.mean_calm_s in
  let rec go t burst phase_end acc n =
    if n >= spec.count then List.rev acc
    else
      let gap = exp_sample rng (rate burst) in
      if t +. gap <= phase_end then
        let t = t +. gap in
        go t burst phase_end ({ at_s = t; burst } :: acc) (n + 1)
      else
        (* phase boundary: switch state and re-draw from the boundary *)
        let t = phase_end in
        let burst = not burst in
        go t burst (t +. exp_sample rng (1. /. mean burst)) acc n
  in
  go 0. false (exp_sample rng (1. /. spec.mean_calm_s)) [] 0

let times spec = List.map (fun a -> a.at_s) (generate spec)
