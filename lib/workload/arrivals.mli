(** Open-arrival submission schedule: a Poisson base stream modulated
    by on/off bursts (a two-state Markov-modulated Poisson process),
    deterministic in the seed. *)

type spec = {
  seed : int;
  count : int;          (** total arrivals to generate *)
  base_rate : float;    (** arrivals/s during calm periods *)
  burst_rate : float;   (** arrivals/s during bursts *)
  mean_calm_s : float;  (** mean calm-period duration, seconds *)
  mean_burst_s : float; (** mean burst duration, seconds *)
}

val default_spec : spec
(** One arrival a minute baseline, 15× bursts of ~2 minutes roughly
    every 15 minutes, 100 arrivals. *)

type arrival = {
  at_s : float;  (** submission instant, nondecreasing across the list *)
  burst : bool;  (** emitted during a burst period *)
}

val generate : spec -> arrival list
(** Exactly [count] arrivals in nondecreasing time order. Deterministic:
    equal specs produce equal schedules. Raises [Invalid_argument] on a
    negative count or non-positive rate or duration. *)

val times : spec -> float list
(** Just the instants of {!generate}. *)
