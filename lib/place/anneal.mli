(** Simulated annealing over a placement state: Metropolis acceptance,
    geometric cooling, deadline- and step-bounded, monotone incumbent
    stream. *)

type params = {
  t0 : float;  (** initial temperature, in objective (MB) units *)
  cooling : float;  (** geometric cooling factor, applied every step *)
  tenure : int;
  candidates : int;
  swap_bias : int;
  check_every : int;  (** steps between wall-clock reads *)
}

val default_params : params

type outcome = {
  best_cost : int;
      (** best objective (estimator) value seen — not the plan cost *)
  best_hosts : int array;
  steps : int;
  accepted : int;
  incumbents : int;
}

val run :
  ?params:params -> ?max_steps:int -> ?seed:int ->
  ?on_incumbent:(cost:int -> int array -> unit) ->
  deadline:float -> State.t -> outcome
(** Anneal the (complete) state until the absolute [deadline]
    (Unix time) or the step budget. [on_incumbent] fires on each strict
    improvement of the best cost with a host snapshot (owned by the
    annealer until the next improvement — copy to keep). On return the
    state is loaded with the best placement seen. Deterministic in
    [seed] apart from the wall-clock cutoff. *)
