(* Mutable placement state with O(1) move evaluation.

   The CP optimiser (section 4.3) re-derives feasibility and cost through
   constraint propagation; a local-search engine cannot afford that per
   candidate move. This module keeps the placement of the re-placed VMs
   as flat arrays — host per VM, residual CPU/memory per node, Table 1
   cost table per VM — so that evaluating or applying a migrate/swap is
   a handful of array reads.

   The maintained objective is the sum of per-VM local action costs
   (exactly the CP objective): an admissible lower bound of the true
   plan cost, which adds the section 4.2 sequencing penalties only once
   a concrete plan is built. Incumbents are therefore re-ranked by
   [Plan.cost] when they are materialised (see {!Portfolio}). *)

open Entropy_core

type t = {
  current : Configuration.t;
  target_base : Configuration.t;
  demand : Demand.t;
  placed : Vm.id array;
  index_of : (Vm.id, int) Hashtbl.t;
  host : int array;  (* host.(i): node of placed.(i), -1 = unassigned *)
  free_cpu : int array;  (* per-node residuals, placed VMs deducted *)
  free_mem : int array;
  base_cpu : int array;  (* residuals with no placed VM assigned *)
  base_mem : int array;
  cpu : int array;  (* demands of placed.(i) *)
  mem : int array;
  tables : int array array;  (* tables.(i).(node): Table 1 local cost *)
  allowed : bool array option array;  (* Ban/Fence + RAM pinning *)
  mutable assigned : int;
  mutable cost : int;  (* sum of tables.(i).(host.(i)) over assigned *)
}

let create ?(rules = []) ~current ~demand ~placed ~target_base () =
  let placed_arr = Array.of_list placed in
  let k = Array.length placed_arr in
  let n = Configuration.node_count target_base in
  let base_cpu, base_mem =
    Optimizer.residual_capacities target_base demand ~placed
  in
  let index_of = Hashtbl.create (max 16 k) in
  Array.iteri (fun i vm -> Hashtbl.replace index_of vm i) placed_arr;
  let allowed =
    Array.map
      (fun vm ->
        match Configuration.state current vm with
        | Configuration.Sleeping_ram h ->
          (* a RAM image can only resume on the node holding it *)
          let m = Array.make n false in
          m.(h) <- true;
          Some m
        | _ -> (
          match Placement_rules.allowed_nodes rules ~node_count:n vm with
          | None -> None
          | Some nodes ->
            let m = Array.make n false in
            List.iter (fun j -> m.(j) <- true) nodes;
            Some m))
      placed_arr
  in
  {
    current;
    target_base;
    demand;
    placed = placed_arr;
    index_of;
    host = Array.make k (-1);
    free_cpu = Array.copy base_cpu;
    free_mem = Array.copy base_mem;
    base_cpu;
    base_mem;
    cpu = Array.map (fun vm -> Demand.cpu demand vm) placed_arr;
    mem =
      Array.map
        (fun vm -> Vm.memory_mb (Configuration.vm current vm))
        placed_arr;
    tables =
      Array.map
        (fun vm -> Optimizer.cost_table current vm ~node_count:n)
        placed_arr;
    allowed;
    assigned = 0;
    cost = 0;
  }

let vm_count t = Array.length t.placed
let node_count t = Array.length t.free_cpu
let host t i = t.host.(i)
let vm t i = t.placed.(i)
let index_of t vm = Hashtbl.find_opt t.index_of vm
let cost t = t.cost
let complete t = t.assigned = vm_count t
let vm_cpu t i = t.cpu.(i)
let vm_mem t i = t.mem.(i)
let table_cost t i j = t.tables.(i).(j)

let allowed t i j =
  match t.allowed.(i) with None -> true | Some m -> m.(j)

let fits t i j =
  allowed t i j && t.free_cpu.(j) >= t.cpu.(i) && t.free_mem.(j) >= t.mem.(i)

let assign t i j =
  t.host.(i) <- j;
  t.free_cpu.(j) <- t.free_cpu.(j) - t.cpu.(i);
  t.free_mem.(j) <- t.free_mem.(j) - t.mem.(i);
  t.assigned <- t.assigned + 1;
  t.cost <- t.cost + t.tables.(i).(j)

let unassign t i =
  let j = t.host.(i) in
  if j >= 0 then begin
    t.host.(i) <- -1;
    t.free_cpu.(j) <- t.free_cpu.(j) + t.cpu.(i);
    t.free_mem.(j) <- t.free_mem.(j) + t.mem.(i);
    t.assigned <- t.assigned - 1;
    t.cost <- t.cost - t.tables.(i).(j)
  end

let move_delta t i j = t.tables.(i).(j) - t.tables.(i).(t.host.(i))

let move t i j =
  unassign t i;
  assign t i j

let swap_delta t a b =
  let na = t.host.(a) and nb = t.host.(b) in
  t.tables.(a).(nb) - t.tables.(a).(na)
  + t.tables.(b).(na) - t.tables.(b).(nb)

let can_swap t a b =
  let na = t.host.(a) and nb = t.host.(b) in
  a <> b && na >= 0 && nb >= 0 && na <> nb
  && allowed t a nb && allowed t b na
  && t.free_cpu.(nb) + t.cpu.(b) >= t.cpu.(a)
  && t.free_mem.(nb) + t.mem.(b) >= t.mem.(a)
  && t.free_cpu.(na) + t.cpu.(a) >= t.cpu.(b)
  && t.free_mem.(na) + t.mem.(a) >= t.mem.(b)

let swap t a b =
  let na = t.host.(a) and nb = t.host.(b) in
  unassign t a;
  unassign t b;
  assign t a nb;
  assign t b na

let recompute_cost t =
  let c = ref 0 in
  Array.iteri (fun i j -> if j >= 0 then c := !c + t.tables.(i).(j)) t.host;
  !c

let copy_hosts t = Array.copy t.host

let load_hosts t hosts =
  Array.blit t.base_cpu 0 t.free_cpu 0 (Array.length t.base_cpu);
  Array.blit t.base_mem 0 t.free_mem 0 (Array.length t.base_mem);
  Array.blit hosts 0 t.host 0 (Array.length hosts);
  t.assigned <- 0;
  t.cost <- 0;
  Array.iteri
    (fun i j ->
      if j >= 0 then begin
        t.free_cpu.(j) <- t.free_cpu.(j) - t.cpu.(i);
        t.free_mem.(j) <- t.free_mem.(j) - t.mem.(i);
        t.assigned <- t.assigned + 1;
        t.cost <- t.cost + t.tables.(i).(j)
      end)
    t.host

let seed_from t config =
  let hosts =
    Array.map
      (fun vm ->
        match Configuration.host config vm with Some j -> j | None -> -1)
      t.placed
  in
  load_hosts t hosts

let to_config t =
  let cfg = ref t.target_base in
  Array.iteri
    (fun i j ->
      if j >= 0 then
        cfg :=
          Configuration.set_state !cfg t.placed.(i) (Configuration.Running j))
    t.host;
  !cfg

let placed_on t node =
  let acc = ref [] in
  for i = vm_count t - 1 downto 0 do
    if t.host.(i) = node then acc := i :: !acc
  done;
  !acc
