(* Large-neighbourhood search: destroy / repair rounds.

   Each round ejects a neighbourhood — every placed VM of one node, one
   vjob's placed VMs (the suspend/resume-vjob neighbourhood: the job's
   VMs are re-placed together), or k random VMs — and repairs it with
   the FFD idiom: ejected VMs in decreasing (memory, CPU) demand order,
   each to the cheapest feasible node by its Table 1 cost table (ties to
   the freest node). A round that cannot repair, or repairs to a worse
   placement, is rolled back, so the state never degrades and the
   incumbent stream is monotone. *)

module Obs = Entropy_obs.Obs
module Metrics = Entropy_obs.Metrics
open Entropy_core

let m_moves = lazy (Metrics.counter "place.moves")
let m_accepted = lazy (Metrics.counter "place.accepted")
let m_incumbents = lazy (Metrics.counter "place.incumbents")

type params = {
  destroy_max : int;  (* VMs ejected by the random neighbourhood *)
  check_every : int;  (* rounds between wall-clock reads *)
}

let default_params = { destroy_max = 8; check_every = 8 }

type outcome = {
  best_cost : int;  (* objective (estimator) value, not plan cost *)
  best_hosts : int array;
  rounds : int;
  improved_rounds : int;
  incumbents : int;
}

let now () = Unix.gettimeofday ()

(* Repair the ejected indices FFD-style; returns false (nothing placed
   yet rolled back by the caller) when some VM has no feasible node. *)
let repair state ejected =
  let order =
    List.sort
      (fun a b ->
        match Int.compare (State.vm_mem state b) (State.vm_mem state a) with
        | 0 -> Int.compare (State.vm_cpu state b) (State.vm_cpu state a)
        | c -> c)
      ejected
  in
  let n = State.node_count state in
  List.for_all
    (fun i ->
      let best = ref (-1) in
      let best_cost = ref max_int in
      for j = 0 to n - 1 do
        if State.fits state i j then begin
          let c = State.table_cost state i j in
          if c < !best_cost then begin
            best_cost := c;
            best := j
          end
        end
      done;
      if !best >= 0 then begin
        State.assign state i !best;
        true
      end
      else false)
    order

let run ?(params = default_params) ?max_rounds ?(seed = 0x1a5)
    ?(vjobs = []) ?(on_incumbent = fun ~cost:_ _ -> ()) ~deadline state =
  Obs.span ~cat:"place" ~name:"place.lns" @@ fun () ->
  let rng = Random.State.make [| seed |] in
  let k = State.vm_count state and n = State.node_count state in
  (* vjob neighbourhoods, as placed-VM index lists *)
  let vjob_sets =
    List.filter_map
      (fun vj ->
        match List.filter_map (State.index_of state) (Vjob.vms vj) with
        | [] -> None
        | ids -> Some ids)
      vjobs
    |> Array.of_list
  in
  let best_cost = ref (State.cost state) in
  let best_hosts = ref (State.copy_hosts state) in
  let rounds = ref 0 and improved = ref 0 and incumbents = ref 0 in
  let budget = match max_rounds with Some r -> r | None -> max_int in
  let stop = ref (k = 0 || n < 2) in
  while (not !stop) && !rounds < budget do
    incr rounds;
    let ejected =
      match !rounds mod 3 with
      | 0 when Array.length vjob_sets > 0 ->
        vjob_sets.(Random.State.int rng (Array.length vjob_sets))
      | 1 -> State.placed_on state (Random.State.int rng n)
      | _ ->
        let m = min params.destroy_max k in
        let seen = Hashtbl.create m in
        for _ = 1 to m do
          Hashtbl.replace seen (Random.State.int rng k) ()
        done;
        Hashtbl.fold (fun i () acc -> i :: acc) seen []
    in
    let ejected = List.filter (fun i -> State.host state i >= 0) ejected in
    if ejected <> [] then begin
      let before = State.cost state in
      let saved = List.map (fun i -> (i, State.host state i)) ejected in
      List.iter (State.unassign state) ejected;
      let ok = repair state ejected in
      if ok && State.cost state < before then begin
        incr improved;
        let c = State.cost state in
        if c < !best_cost then begin
          best_cost := c;
          best_hosts := State.copy_hosts state;
          incr incumbents;
          on_incumbent ~cost:c !best_hosts
        end
      end
      else begin
        (* roll back: unassign whatever the repair placed, restore *)
        List.iter
          (fun (i, _) -> if State.host state i >= 0 then State.unassign state i)
          saved;
        List.iter (fun (i, j) -> State.assign state i j) saved
      end
    end;
    if !rounds mod params.check_every = 0 && now () >= deadline then
      stop := true
  done;
  if State.cost state > !best_cost then State.load_hosts state !best_hosts;
  if !Obs.enabled then begin
    Metrics.add (Lazy.force m_moves) !rounds;
    Metrics.add (Lazy.force m_accepted) !improved;
    Metrics.add (Lazy.force m_incumbents) !incumbents
  end;
  {
    best_cost = !best_cost;
    best_hosts = !best_hosts;
    rounds = !rounds;
    improved_rounds = !improved;
    incumbents = !incumbents;
  }
