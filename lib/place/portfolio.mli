(** The solver portfolio: FFD seed, interleaved SA/LNS time slices, CP
    branch & bound warm-started with the incumbent's true cost, all
    under one wall-clock deadline. Every returned plan is viable per the
    independent verifier. *)

open Entropy_core

type engine = [ `Cp | `Anneal | `Portfolio ]
(** [`Cp]: CP B&B only (the paper's optimiser). [`Anneal]: local search
    only (SA + LNS slices). [`Portfolio]: local search, then CP on the
    remaining budget with the incumbent posted as an upper bound. *)

val engine_to_string : engine -> string
val engine_of_string : string -> engine option

type report = {
  result : Optimizer.result;  (** best verifier-viable outcome *)
  winner : string;  (** engine of the final incumbent:
                        "ffd", "sa", "lns" or "cp" *)
  ffd_cost : int;  (** true plan cost of the FFD fallback *)
  local_cost : int option;
      (** best local-search true cost, when local search ran and
          materialised a plan *)
  deadline : float;
  elapsed : float;
}

val solve :
  ?deadline:float -> ?engine:engine -> ?vjobs:Vjob.t list ->
  ?rules:Placement_rules.t list -> ?seed:int ->
  current:Configuration.t -> demand:Demand.t -> placed:Vm.id list ->
  target_base:Configuration.t -> fallback:Configuration.t -> unit ->
  report
(** Race the engines for [deadline] seconds (default 1.0). The contract
    matches {!Optimizer.optimize}: re-place [placed] on top of
    [target_base], [fallback] (e.g. the RJSP FFD configuration) is the
    instant incumbent. Relational placement rules (Spread/Gather/Quota)
    disable the local-search phase; Ban/Fence are honoured as node
    masks. Deterministic in [seed] up to wall-clock slicing. *)

val decision :
  ?engine:engine -> ?deadline:float -> ?heuristic:Ffd.heuristic ->
  ?rules:Placement_rules.t list -> ?suspend_to_ram:bool -> unit ->
  Decision.t
(** The consolidation decision module with the portfolio as placement
    optimiser (via {!Decision.consolidation_with}); [`Cp] degrades to
    the plain {!Decision.consolidation}. *)
