(* Log source for the local-search placement engines. Enable with e.g.
   [Logs.Src.set_level Log.src (Some Logs.Debug)]. *)

let src =
  Logs.Src.create "entropy.place" ~doc:"Local-search placement engines"

include (val Logs.src_log src : Logs.LOG)
