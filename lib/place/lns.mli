(** Large-neighbourhood search: eject a node's VMs, a vjob's VMs or a
    random handful, repair FFD-style against the Table 1 cost tables,
    roll back non-improving rounds. The state never degrades. *)

open Entropy_core

type params = {
  destroy_max : int;  (** VMs ejected by the random neighbourhood *)
  check_every : int;  (** rounds between wall-clock reads *)
}

val default_params : params

type outcome = {
  best_cost : int;
      (** best objective (estimator) value seen — not the plan cost *)
  best_hosts : int array;
  rounds : int;
  improved_rounds : int;
  incumbents : int;
}

val run :
  ?params:params -> ?max_rounds:int -> ?seed:int -> ?vjobs:Vjob.t list ->
  ?on_incumbent:(cost:int -> int array -> unit) ->
  deadline:float -> State.t -> outcome
(** Destroy/repair until the absolute [deadline] (Unix time) or the
    round budget. [vjobs] enables the vjob-eject neighbourhood.
    [on_incumbent] as in {!Anneal.run}. On return the state holds the
    best placement seen. *)
