(* Move generators over placement states.

   Two elementary neighbourhoods drive the annealer: migrate-one (pick a
   VM, try another node) and swap-pair (exchange the hosts of two VMs —
   reaches packings a single migration cannot, because each VM's
   resources count as freed for the other). Proposals are sampled with a
   bounded number of candidate draws per call (the distance limit: the
   generator gives up rather than scanning the whole neighbourhood) and
   a tabu tenure per VM so the search does not undo its own recent moves
   for a few steps. The vjob-eject and node-eject neighbourhoods are the
   large moves of {!Lns}. *)

type t =
  | Migrate of { idx : int; dst : int }
  | Swap of { a : int; b : int }

type gen = {
  rng : Random.State.t;
  tabu : int array;  (* tabu.(i): clock tick until which VM i is tabu *)
  mutable clock : int;
  tenure : int;
  candidates : int;  (* distance limit: draws attempted per proposal *)
  swap_bias : int;  (* percentage of proposals that try a swap *)
}

let make_gen ?(tenure = 8) ?(candidates = 16) ?(swap_bias = 30) ~seed state =
  {
    rng = Random.State.make [| seed |];
    tabu = Array.make (max 1 (State.vm_count state)) 0;
    clock = 0;
    tenure;
    candidates;
    swap_bias;
  }

let delta state = function
  | Migrate { idx; dst } -> State.move_delta state idx dst
  | Swap { a; b } -> State.swap_delta state a b

let feasible state = function
  | Migrate { idx; dst } ->
    dst <> State.host state idx && State.fits state idx dst
  | Swap { a; b } -> State.can_swap state a b

let apply gen state m =
  gen.clock <- gen.clock + 1;
  match m with
  | Migrate { idx; dst } ->
    State.move state idx dst;
    gen.tabu.(idx) <- gen.clock + gen.tenure
  | Swap { a; b } ->
    State.swap state a b;
    gen.tabu.(a) <- gen.clock + gen.tenure;
    gen.tabu.(b) <- gen.clock + gen.tenure

let propose gen state =
  let k = State.vm_count state and n = State.node_count state in
  if k = 0 || n < 2 then None
  else
    let rec draw attempts =
      if attempts <= 0 then None
      else
        let i = Random.State.int gen.rng k in
        if gen.tabu.(i) > gen.clock then draw (attempts - 1)
        else if
          k > 1 && Random.State.int gen.rng 100 < gen.swap_bias
        then begin
          let b = Random.State.int gen.rng k in
          if b <> i && gen.tabu.(b) <= gen.clock && State.can_swap state i b
          then Some (Swap { a = i; b })
          else draw (attempts - 1)
        end
        else begin
          let dst = Random.State.int gen.rng n in
          if dst <> State.host state i && State.fits state i dst then
            Some (Migrate { idx = i; dst })
          else draw (attempts - 1)
        end
    in
    draw gen.candidates
