(* Simulated annealing over placement states.

   Metropolis acceptance with geometric cooling: improving moves are
   always taken, worsening moves with probability exp(-delta/T). The
   temperature floors at 1 (pure hill climbing) instead of reheating —
   the portfolio restarts the annealer per time slice, which plays the
   reheating role. The incumbent stream is monotone: [on_incumbent]
   fires only when the best cost strictly improves. *)

module Obs = Entropy_obs.Obs
module Metrics = Entropy_obs.Metrics

let m_moves = lazy (Metrics.counter "place.moves")
let m_accepted = lazy (Metrics.counter "place.accepted")
let m_incumbents = lazy (Metrics.counter "place.incumbents")

type params = {
  t0 : float;  (* initial temperature, objective (MB) units *)
  cooling : float;  (* geometric factor applied every step *)
  tenure : int;
  candidates : int;
  swap_bias : int;
  check_every : int;  (* steps between wall-clock reads *)
}

let default_params =
  {
    t0 = 1024.;
    cooling = 0.9995;
    tenure = 8;
    candidates = 16;
    swap_bias = 30;
    check_every = 64;
  }

type outcome = {
  best_cost : int;  (* objective (estimator) value, not plan cost *)
  best_hosts : int array;
  steps : int;
  accepted : int;
  incumbents : int;
}

let now () = Unix.gettimeofday ()

let run ?(params = default_params) ?max_steps ?(seed = 0x5a11)
    ?(on_incumbent = fun ~cost:_ _ -> ()) ~deadline state =
  Obs.span ~cat:"place" ~name:"place.sa" @@ fun () ->
  let gen =
    Moves.make_gen ~tenure:params.tenure ~candidates:params.candidates
      ~swap_bias:params.swap_bias ~seed state
  in
  let rng = Random.State.make [| seed lxor 0x5eed |] in
  let temp = ref params.t0 in
  let best_cost = ref (State.cost state) in
  let best_hosts = ref (State.copy_hosts state) in
  let steps = ref 0 and accepted = ref 0 and incumbents = ref 0 in
  let budget = match max_steps with Some s -> s | None -> max_int in
  let stop = ref false in
  while (not !stop) && !steps < budget do
    incr steps;
    (match Moves.propose gen state with
    | None -> ()
    | Some m ->
      let d = Moves.delta state m in
      if
        d <= 0
        || Random.State.float rng 1.0 < exp (-.float_of_int d /. !temp)
      then begin
        Moves.apply gen state m;
        incr accepted;
        let c = State.cost state in
        if c < !best_cost then begin
          best_cost := c;
          best_hosts := State.copy_hosts state;
          incr incumbents;
          on_incumbent ~cost:c !best_hosts
        end
      end);
    temp := !temp *. params.cooling;
    if !temp < 1. then temp := 1.;
    if !steps mod params.check_every = 0 && now () >= deadline then
      stop := true
  done;
  (* leave the state at the best placement seen *)
  if State.cost state > !best_cost then State.load_hosts state !best_hosts;
  if !Obs.enabled then begin
    Metrics.add (Lazy.force m_moves) !steps;
    Metrics.add (Lazy.force m_accepted) !accepted;
    Metrics.add (Lazy.force m_incumbents) !incumbents
  end;
  {
    best_cost = !best_cost;
    best_hosts = !best_hosts;
    steps = !steps;
    accepted = !accepted;
    incumbents = !incumbents;
  }
