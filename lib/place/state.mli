(** Mutable placement state with O(1) move evaluation.

    Holds the placement of the re-placed VMs as flat arrays (host per
    VM, residual capacities per node, Table 1 cost table per VM) so the
    local-search engines can evaluate and apply moves without rebuilding
    a configuration or a plan. The maintained objective is the sum of
    per-VM local action costs — the CP objective, an admissible lower
    bound of the true plan cost. *)

open Entropy_core

type t

val create :
  ?rules:Placement_rules.t list ->
  current:Configuration.t -> demand:Demand.t -> placed:Vm.id list ->
  target_base:Configuration.t -> unit -> t
(** Empty state (every placed VM unassigned) over the residual
    capacities of [target_base]. Only Ban/Fence rules are captured (as
    per-VM allowed-node masks); relational rules must be handled by the
    caller (the portfolio falls back to CP-only when any are present).
    RAM-suspended VMs are pinned to the node holding their image. *)

val vm_count : t -> int
val node_count : t -> int

val host : t -> int -> int
(** Node of the i-th placed VM, [-1] when unassigned. *)

val vm : t -> int -> Vm.id
val index_of : t -> Vm.id -> int option
val vm_cpu : t -> int -> int
val vm_mem : t -> int -> int
val table_cost : t -> int -> int -> int
(** [table_cost t i j]: Table 1 local cost of running VM [i] on node [j]. *)

val cost : t -> int
(** Incrementally-maintained objective (sum of assigned VMs' local
    action costs). *)

val recompute_cost : t -> int
(** From-scratch recomputation of {!cost} — the parity oracle. *)

val complete : t -> bool
val allowed : t -> int -> int -> bool
val fits : t -> int -> int -> bool
(** Whether VM [i] fits on node [j] under the current residuals and its
    allowed-node mask. *)

val assign : t -> int -> int -> unit
(** Assign an unassigned VM (caller checks {!fits}). *)

val unassign : t -> int -> unit

val move : t -> int -> int -> unit
(** Reassign an assigned VM; [move_delta] is its cost change. *)

val move_delta : t -> int -> int -> int

val can_swap : t -> int -> int -> bool
(** Whether exchanging the hosts of two assigned VMs keeps both fitting
    (each other's resources counted as freed). *)

val swap : t -> int -> int -> unit
val swap_delta : t -> int -> int -> int

val copy_hosts : t -> int array
val load_hosts : t -> int array -> unit
(** Restore a host snapshot ([copy_hosts]); rebuilds residuals in
    O(vms + nodes). *)

val seed_from : t -> Configuration.t -> unit
(** Load every placed VM's host from a (viable) configuration, e.g. the
    FFD solution. *)

val to_config : t -> Configuration.t
(** Target configuration: the placed VMs Running on their hosts, on top
    of the target base. Meaningful when {!complete}. *)

val placed_on : t -> int -> int list
(** Indices of the placed VMs currently assigned to the node. *)
