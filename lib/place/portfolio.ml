(* The solver portfolio: FFD -> SA/LNS -> CP B&B under one deadline.

   The FFD fallback is the instant incumbent. The local-search engines
   then run in interleaved cooperative time slices over one shared
   state (the annealer restarted per slice plays the reheating role;
   LNS continues from the annealer's best). Whenever a slice improves
   the objective estimate, the placement is materialised — target
   configuration, plan through the real planner, true section 4.2 cost,
   independent verifier check — and adopted only if the true cost beats
   the incumbent's and the verifier is clean. The CP search gets the
   remaining wall-clock budget, warm-started by posting the incumbent's
   true cost as an upper bound (the CP objective is an admissible lower
   bound of the true cost, so the pruning is sound).

   Everything returned is verifier-viable: the portfolio never trades
   correctness for speed. *)

module Obs = Entropy_obs.Obs
module Trace = Entropy_obs.Trace
module Metrics = Entropy_obs.Metrics
module Verifier = Entropy_analysis.Verifier
open Entropy_core

let m_restarts = lazy (Metrics.counter "place.restarts")
let m_incumbents = lazy (Metrics.counter "place.incumbents")

type engine = [ `Cp | `Anneal | `Portfolio ]

let engine_to_string = function
  | `Cp -> "cp"
  | `Anneal -> "anneal"
  | `Portfolio -> "portfolio"

let engine_of_string = function
  | "cp" -> Some `Cp
  | "anneal" -> Some `Anneal
  | "portfolio" -> Some `Portfolio
  | _ -> None

type report = {
  result : Optimizer.result;
  winner : string;  (* "ffd", "sa", "lns" or "cp" *)
  ffd_cost : int;
  local_cost : int option;  (* best local-search true cost, if any *)
  deadline : float;
  elapsed : float;
}

let now () = Unix.gettimeofday ()

(* Relational rules (Spread/Gather/Quota) are not captured by the
   per-VM masks of {!State}; with any present the portfolio leaves the
   whole budget to CP, which posts them as constraints. *)
let local_search_safe rules =
  List.for_all
    (function
      | Placement_rules.Ban _ | Placement_rules.Fence _ -> true
      | Placement_rules.Spread _ | Placement_rules.Gather _
      | Placement_rules.Quota _ -> false)
    rules

let solve ?(deadline = 1.0) ?(engine = `Portfolio) ?vjobs ?(rules = [])
    ?(seed = 0x9e37) ~current ~demand ~placed ~target_base ~fallback () =
  Obs.span ~cat:"place" ~name:"place.portfolio"
    ~args:
      [
        ("engine", Trace.S (engine_to_string engine));
        ("vms", Trace.I (List.length placed));
      ]
  @@ fun () ->
  let t_start = now () in
  let t_end = t_start +. deadline in
  let fallback_plan =
    Planner.build_plan ?vjobs ~current ~target:fallback ~demand ()
  in
  let ffd_cost = Plan.cost current fallback_plan in
  let incumbent =
    ref
      {
        Optimizer.target = fallback;
        plan = fallback_plan;
        cost = ffd_cost;
        improved = false;
        rules_satisfied = Placement_rules.check_all fallback rules;
        stats = None;
      }
  in
  let winner = ref "ffd" in
  let local_cost = ref None in
  (* adopt a candidate result if it strictly beats the incumbent's true
     cost and the independent verifier accepts its plan *)
  let record name (r : Optimizer.result) =
    if
      r.Optimizer.cost < !incumbent.Optimizer.cost
      && Verifier.is_clean ?vjobs ~current ~target:r.Optimizer.target
           ~demand r.Optimizer.plan
    then begin
      incumbent := r;
      winner := name;
      if !Obs.enabled then begin
        Obs.instant ~cat:"place"
          ~args:
            [ ("engine", Trace.S name); ("cost", Trace.I r.Optimizer.cost) ]
          "place.incumbent";
        Metrics.incr (Lazy.force m_incumbents)
      end
    end
  in
  (* materialise a complete local-search state through the real planner *)
  let materialise name st =
    if State.complete st then begin
      let target = State.to_config st in
      match Planner.build_plan ?vjobs ~current ~target ~demand () with
      | plan ->
        let cost = Plan.cost current plan in
        (match !local_cost with
        | Some c when c <= cost -> ()
        | _ -> local_cost := Some cost);
        record name
          {
            Optimizer.target;
            plan;
            cost;
            improved = cost < ffd_cost;
            rules_satisfied = Placement_rules.check_all target rules;
            stats = None;
          }
      | exception Planner.Stuck _ -> ()
    end
  in
  let use_local =
    (match engine with `Cp -> false | `Anneal | `Portfolio -> true)
    && placed <> []
    && local_search_safe rules
  in
  if use_local then begin
    let st = State.create ~rules ~current ~demand ~placed ~target_base () in
    State.seed_from st fallback;
    let local_end =
      match engine with
      | `Anneal -> t_end
      | _ -> t_start +. (deadline *. 0.6)
    in
    (* interleaved cooperative slices: SA, LNS, SA, LNS, ... over the
       shared state; each slice restarts its engine from the running
       best *)
    let slice = Float.max 0.005 ((local_end -. t_start) /. 6.) in
    let best_est = ref (State.cost st) in
    let i = ref 0 in
    while now () < local_end do
      let till = Float.min local_end (now () +. slice) in
      let est =
        if !i mod 2 = 0 then
          (Anneal.run ~seed:(seed + !i) ~deadline:till st).Anneal.best_cost
        else
          (Lns.run ~seed:(seed + !i) ?vjobs ~deadline:till st).Lns.best_cost
      in
      if !i > 0 && !Obs.enabled then Metrics.incr (Lazy.force m_restarts);
      if est < !best_est then begin
        best_est := est;
        materialise (if !i mod 2 = 0 then "sa" else "lns") st
      end;
      incr i
    done;
    (* the seed itself may already beat FFD in true cost (the estimate
       ties but sequencing penalties differ) — materialise once even
       without an estimate improvement *)
    if !local_cost = None then materialise "sa" st
  end;
  (match engine with
  | `Anneal -> ()
  | `Cp | `Portfolio ->
    let remaining = Float.max 0.02 (t_end -. now ()) in
    (* warm start with the incumbent's *true* cost, never its objective
       estimate: the objective is an admissible lower bound of the true
       cost, so this bound cannot prune a true-cost-better plan, while
       an objective-scale bound could (a CP solution with a slightly
       larger objective may still win on sequencing penalties) *)
    let r =
      Optimizer.optimize ~timeout:remaining ?vjobs ~rules
        ~incumbent_cost:!incumbent.Optimizer.cost ~current ~demand ~placed
        ~target_base ~fallback ()
    in
    (* keep the CP stats for reporting even when CP does not win *)
    incumbent := { !incumbent with Optimizer.stats = r.Optimizer.stats };
    record "cp" r);
  let result =
    { !incumbent with Optimizer.improved = !incumbent.Optimizer.cost < ffd_cost }
  in
  let elapsed = now () -. t_start in
  Log.debug (fun m ->
      m "portfolio(%s): ffd=%d best=%d winner=%s elapsed=%.3fs"
        (engine_to_string engine) ffd_cost result.Optimizer.cost !winner
        elapsed);
  { result; winner = !winner; ffd_cost; local_cost = !local_cost;
    deadline; elapsed }

let decision ?(engine = `Portfolio) ?(deadline = 1.0)
    ?(heuristic = Ffd.First_fit) ?(rules = []) ?(suspend_to_ram = false) () =
  match engine with
  | `Cp ->
    Decision.consolidation ~cp_timeout:deadline ~heuristic ~rules
      ~suspend_to_ram ()
  | (`Anneal | `Portfolio) as engine ->
    let name =
      Printf.sprintf "%s-consolidation" (engine_to_string engine)
    in
    Decision.consolidation_with ~name ~heuristic ~rules ~suspend_to_ram
      (fun ~current ~demand ~vjobs ~placed ~target_base ->
        (solve ~deadline ~engine ~vjobs ~rules ~current ~demand ~placed
           ~target_base ~fallback:target_base ())
          .result)
