(** Elementary move generators: migrate-one and swap-pair proposals with
    tabu tenure and a bounded candidate draw per proposal. *)

type t =
  | Migrate of { idx : int; dst : int }
      (** reassign placed VM [idx] to node [dst] *)
  | Swap of { a : int; b : int }  (** exchange the hosts of two VMs *)

type gen

val make_gen :
  ?tenure:int -> ?candidates:int -> ?swap_bias:int -> seed:int ->
  State.t -> gen
(** [tenure] steps during which a just-moved VM is not proposed again;
    [candidates] random draws attempted before a proposal round gives
    up; [swap_bias] percentage of draws that try a swap. Deterministic
    in [seed]. *)

val propose : gen -> State.t -> t option
(** A feasible, non-tabu move, or [None] when the bounded draws found
    none (not a proof that the neighbourhood is empty). *)

val delta : State.t -> t -> int
(** Objective change if the move were applied (O(1) table lookups). *)

val feasible : State.t -> t -> bool

val apply : gen -> State.t -> t -> unit
(** Apply the move and mark the touched VMs tabu. *)
