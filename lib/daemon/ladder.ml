(* The graceful-degradation ladder: immediate escalation on any hot
   pressure signal, hysteretic relaxation (calm streak over lower
   thresholds), and a timed hold at Defer so the bottom rung cannot
   become a parking orbit. *)

type level = Full | Shrunk | Heuristic | Defer

let levels = [ Full; Shrunk; Heuristic; Defer ]
let index = function Full -> 0 | Shrunk -> 1 | Heuristic -> 2 | Defer -> 3

let of_index = function
  | 0 -> Some Full
  | 1 -> Some Shrunk
  | 2 -> Some Heuristic
  | 3 -> Some Defer
  | _ -> None

let to_string = function
  | Full -> "full"
  | Shrunk -> "shrunk"
  | Heuristic -> "heuristic"
  | Defer -> "defer"

let pp ppf l = Fmt.string ppf (to_string l)

type pressure = {
  queue_fill : float;
  oldest_age_s : float;
  decision_lag_s : float;
}

let pp_pressure ppf p =
  Fmt.pf ppf "fill %.0f%%, oldest %.0fs, lag %.0fs" (p.queue_fill *. 100.)
    p.oldest_age_s p.decision_lag_s

type thresholds = { fill : float; age_s : float; lag_s : float }

type config = {
  escalate : thresholds;
  relax : thresholds;
  calm_rounds : int;
  defer_hold_s : float;
}

let default_config =
  {
    escalate = { fill = 0.75; age_s = 180.; lag_s = 60. };
    relax = { fill = 0.25; age_s = 30.; lag_s = 10. };
    calm_rounds = 3;
    defer_hold_s = 120.;
  }

type transition = {
  from_level : level;
  to_level : level;
  at_s : float;
  cause : string;
}

let pp_transition ppf t =
  Fmt.pf ppf "%a -> %a at %.0fs (%s)" pp t.from_level pp t.to_level t.at_s
    t.cause

type t = {
  config : config;
  mutable level : level;
  mutable calm : int;            (* consecutive calm observations *)
  mutable defer_until : float;   (* hold expiry while at Defer *)
  mutable ups : int;
  mutable downs : int;
}

let check_config c =
  if c.relax.fill >= c.escalate.fill || c.relax.age_s >= c.escalate.age_s
     || c.relax.lag_s >= c.escalate.lag_s
  then invalid_arg "Ladder.create: relax thresholds must be below escalate";
  if c.calm_rounds <= 0 then invalid_arg "Ladder.create: calm_rounds <= 0";
  if c.defer_hold_s <= 0. then invalid_arg "Ladder.create: defer_hold_s <= 0"

let create ?(config = default_config) ?(level = Full) () =
  check_config config;
  { config; level; calm = 0; defer_until = 0.; ups = 0; downs = 0 }

let level t = t.level
let defer_until t = t.defer_until
let ups t = t.ups
let downs t = t.downs

let down_one = function
  | Full -> Full
  | Shrunk -> Full
  | Heuristic -> Shrunk
  | Defer -> Heuristic

let up_one = function
  | Full -> Shrunk
  | Shrunk -> Heuristic
  | Heuristic -> Defer
  | Defer -> Defer

(* the first signal at or above its escalate threshold, for the journal *)
let hot c p =
  if p.queue_fill >= c.escalate.fill then
    Some (Printf.sprintf "queue %.0f%% full" (p.queue_fill *. 100.))
  else if p.oldest_age_s >= c.escalate.age_s then
    Some (Printf.sprintf "oldest submission waiting %.0fs" p.oldest_age_s)
  else if p.decision_lag_s >= c.escalate.lag_s then
    Some (Printf.sprintf "decision lag %.0fs" p.decision_lag_s)
  else None

let calm c p =
  p.queue_fill < c.relax.fill
  && p.oldest_age_s < c.relax.age_s
  && p.decision_lag_s < c.relax.lag_s

let transition t ~now ~cause to_level =
  let tr = { from_level = t.level; to_level; at_s = now; cause } in
  if index to_level > index t.level then t.ups <- t.ups + 1
  else t.downs <- t.downs + 1;
  t.level <- to_level;
  t.calm <- 0;
  if to_level = Defer then t.defer_until <- now +. t.config.defer_hold_s;
  Log.info (fun m -> m "ladder %a" pp_transition tr);
  Some tr

let observe t ~now p =
  if t.level = Defer && now >= t.defer_until then
    (* the hold is self-limiting: park at most defer_hold_s, then force
       a cheap re-decision whatever the pressure says *)
    transition t ~now ~cause:"defer hold expired" Heuristic
  else
    match hot t.config p with
    | Some cause when t.level <> Defer ->
      transition t ~now ~cause (up_one t.level)
    | Some _ ->
      t.calm <- 0;
      None
    | None ->
      if calm t.config p then begin
        t.calm <- t.calm + 1;
        if t.calm >= t.config.calm_rounds && t.level <> Full then
          transition t ~now
            ~cause:(Fmt.str "calm for %d rounds (%a)" t.calm pp_pressure p)
            (down_one t.level)
        else None
      end
      else begin
        t.calm <- 0;
        None
      end
