(* Debounced trigger coalescing: Idle -> Armed -> Busy -> Idle. One
   decision per debounce window, whatever the event rate; raises during
   a decision re-arm at settle so nothing is lost. *)

type state = Idle | Armed | Busy

let pp_state ppf s =
  Fmt.string ppf
    (match s with Idle -> "idle" | Armed -> "armed" | Busy -> "busy")

type t = {
  debounce_s : float;
  mutable state : state;
  mutable reasons : string list;  (* pending, reverse arrival order *)
  mutable events : int;           (* pending raises *)
  mutable first_at : float;       (* earliest pending raise *)
  mutable raised_total : int;
  mutable fired_total : int;
}

let create ?(debounce_s = 5.) () =
  if debounce_s < 0. then invalid_arg "Triggers.create: negative debounce";
  {
    debounce_s;
    state = Idle;
    reasons = [];
    events = 0;
    first_at = 0.;
    raised_total = 0;
    fired_total = 0;
  }

let state t = t.state

let note t ~now ~reason =
  if t.events = 0 then t.first_at <- now;
  t.events <- t.events + 1;
  t.raised_total <- t.raised_total + 1;
  if not (List.mem reason t.reasons) then t.reasons <- reason :: t.reasons

let raise_ t ~now ~reason =
  note t ~now ~reason;
  match t.state with
  | Idle ->
    t.state <- Armed;
    Some (now +. t.debounce_s)
  | Armed | Busy -> None

type pending = { reasons : string list; events : int; first_at : float }

let fire t =
  match t.state with
  | Armed when t.events > 0 ->
    t.state <- Busy;
    t.fired_total <- t.fired_total + 1;
    let p =
      { reasons = List.rev t.reasons; events = t.events; first_at = t.first_at }
    in
    t.reasons <- [];
    t.events <- 0;
    Some p
  | Armed | Idle | Busy -> None

let settle t ~now =
  match t.state with
  | Busy ->
    if t.events > 0 then begin
      (* events arrived while deciding: immediately re-arm *)
      t.state <- Armed;
      Some (now +. t.debounce_s)
    end
    else begin
      t.state <- Idle;
      None
    end
  | Idle | Armed -> None

let raised_total t = t.raised_total
let fired_total t = t.fired_total
let coalesced_total t = t.raised_total - t.fired_total
