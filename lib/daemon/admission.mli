(** Bounded submission queue with admission control.

    Open-arrival submissions land here before the placement loop sees
    them. The queue is hard-bounded: a submission that would fill the
    queue to its cap is rejected with a reason instead of enqueued, so
    the daemon's memory footprint and decision latency stay bounded
    under any arrival storm — the observed depth never reaches [cap].

    The queue is FIFO: admission drains from the head, preserving
    submission order (the paper's FCFS job queue). Backpressure is
    exposed as {!fill} (fraction of the cap in use) and {!oldest_age}
    (how long the head entry has been waiting) — the two pressure
    signals the degradation ladder reads. *)

type entry = {
  vjob : int;           (** submitted vjob id *)
  vms : int;            (** its VM count *)
  submitted_at : float; (** simulated submission instant *)
}

type t

val create : ?cap:int -> unit -> t
(** Raises [Invalid_argument] when [cap < 2] (a cap of 1 could never
    admit anything: the bound is [depth < cap]). Default cap 64. *)

val cap : t -> int
val depth : t -> int

val fill : t -> float
(** [depth / cap], in [0, 1). *)

val oldest_age : t -> now:float -> float
(** Age of the head (oldest queued) entry; [0.] when empty. *)

val submit :
  t -> now:float -> vjob:int -> vms:int -> [ `Queued | `Rejected of string ]
(** Enqueue one submission, or reject it when the queue would reach its
    cap. Rejection is permanent: the daemon journals it and the
    submitter is expected to resubmit as a new vjob if it cares. *)

val requeue : t -> entry -> unit
(** Put a recovered entry back (resume path: journaled [Queued] with no
    later disposition). Bypasses the cap check — the entry was already
    admitted to the queue before the crash — but still raises
    [Invalid_argument] if it would overflow the cap, which would mean
    the journal and the cap disagree. *)

val take : t -> max:int -> entry list
(** Dequeue up to [max] entries from the head, FIFO order. *)

val peak : t -> int
(** High-water mark of {!depth} over the queue's lifetime. *)

val queued_total : t -> int
(** Submissions ever enqueued (admitted to the queue, not the cluster). *)

val rejected_total : t -> int
