(* Bounded FIFO submission queue. The invariant the rest of the daemon
   (and the soak acceptance test) leans on: [depth < cap] at all times —
   [submit] rejects the entry that would reach the cap, so the queue can
   never grow without bound however fast arrivals come in. *)

type entry = { vjob : int; vms : int; submitted_at : float }

type t = {
  cap : int;
  q : entry Queue.t;
  mutable peak : int;
  mutable queued_total : int;
  mutable rejected_total : int;
}

let create ?(cap = 64) () =
  if cap < 2 then invalid_arg "Admission.create: cap < 2";
  { cap; q = Queue.create (); peak = 0; queued_total = 0; rejected_total = 0 }

let cap t = t.cap
let depth t = Queue.length t.q
let fill t = float_of_int (depth t) /. float_of_int t.cap

let oldest_age t ~now =
  match Queue.peek_opt t.q with
  | None -> 0.
  | Some e -> Float.max 0. (now -. e.submitted_at)

let note_depth t =
  let d = depth t in
  if d > t.peak then t.peak <- d

let submit t ~now ~vjob ~vms =
  if depth t + 1 >= t.cap then begin
    t.rejected_total <- t.rejected_total + 1;
    Log.info (fun m ->
        m "vjob %d rejected at %.0fs: queue full (%d/%d)" vjob now (depth t)
          t.cap);
    `Rejected (Printf.sprintf "queue full (%d/%d)" (depth t) t.cap)
  end
  else begin
    Queue.add { vjob; vms; submitted_at = now } t.q;
    t.queued_total <- t.queued_total + 1;
    note_depth t;
    `Queued
  end

let requeue t e =
  if depth t + 1 >= t.cap then
    invalid_arg "Admission.requeue: recovered entries overflow the cap";
  Queue.add e t.q;
  t.queued_total <- t.queued_total + 1;
  note_depth t

let take t ~max =
  let rec go n acc =
    if n >= max then List.rev acc
    else
      match Queue.take_opt t.q with
      | None -> List.rev acc
      | Some e -> go (n + 1) (e :: acc)
  in
  go 0 []

let peak t = t.peak
let queued_total t = t.queued_total
let rejected_total t = t.rejected_total
