(* entropyd: the overload-tolerant online control plane.

   One discrete-event episode: open-arrival submissions stream in
   (Vworkload.Arrivals), every event — arrival, completion, load spike,
   node crash — raises a debounced trigger (Triggers), each trigger fire
   runs one decision round at the degradation ladder's current rung
   (Ladder), admitting at most a batch from the bounded submission
   queue (Admission) and re-placing the admitted, still-live vjobs
   through the usual decision/executor/repair machinery of the
   simulator. Admission decisions and ladder transitions ride the
   write-ahead journal next to the switch records, so a killed daemon
   resumes mid-storm: settled dispositions are replayed, the in-flight
   switch is reconciled and completed idempotently, missed arrivals are
   re-submitted, and the ladder restarts on its journaled rung.

   Determinism: the instance, the arrival schedule and the crash script
   all derive from [config.seed]; with [deterministic = true] the
   wall-clock-bounded solver portfolio is replaced by the FFD incumbent
   at every rung and the whole episode is a pure function of the
   config. *)

module Obs = Entropy_obs.Obs
module Trace = Entropy_obs.Trace
module Metrics = Entropy_obs.Metrics
module Json = Entropy_obs.Json
module Journal = Entropy_journal.Journal
module Jrecord = Entropy_journal.Record
module Recovery = Entropy_journal.Recovery
module Injector = Entropy_fault.Injector
module Supervisor = Entropy_fault.Supervisor
module Repair = Entropy_fault.Repair
module Arrivals = Vworkload.Arrivals
module Engine = Vsim.Engine
module Cluster = Vsim.Cluster
module Executor = Vsim.Executor
module Collector = Vmonitor.Collector
open Entropy_core

type config = {
  seed : int;
  nodes : int;
  node_cpu : int;
  node_mem : int;
  submissions : int;
  base_rate : float;
  burst_rate : float;
  mean_calm_s : float;
  mean_burst_s : float;
  admission_cap : int;
  admit_batch : int;
  debounce_s : float;
  ladder : Ladder.config;
  full_deadline : float;
  shrunk_deadline : float;
  deterministic : bool;
  fail_rate : float;
  crashes : int;
  timeout_factor : float;
  retries : int;
  max_repairs : int;
  poll_period : float;
  kill_at : float option;
  max_time : float;
}

let default_config =
  {
    seed = 0;
    nodes = 24;
    node_cpu = 400;
    node_mem = 4096;
    submissions = 200;
    base_rate = 1. /. 60.;
    burst_rate = 0.25;
    mean_calm_s = 900.;
    mean_burst_s = 120.;
    admission_cap = 64;
    admit_batch = 8;
    debounce_s = 5.;
    ladder = Ladder.default_config;
    full_deadline = 0.02;
    shrunk_deadline = 0.005;
    deterministic = false;
    fail_rate = 0.1;
    crashes = 0;
    timeout_factor = 3.;
    retries = 2;
    max_repairs = 4;
    poll_period = 5.;
    kill_at = None;
    max_time = 1_000_000.;
  }

type report = {
  submissions : int;
  admitted : int;
  rejected : int;
  completed : int;
  all_terminated : bool;
  final_viable : bool;
  max_queue_depth : int;
  admission_cap : int;
  queue_bounded : bool;
  decision_rounds : int;
  deferred_rounds : int;
  max_defer_streak : int;
  defer_round_bound : int;
  livelock_episodes : int;
  degradation_bounded : bool;
  ladder_ups : int;
  ladder_downs : int;
  transitions : Ladder.transition list;
  final_level : Ladder.level;
  triggers_raised : int;
  triggers_coalesced : int;
  switches : int;
  repairs : int;
  action_failures : int;
  crashes : (Node.id * float) list;
  killed : bool;
  resumed : bool;
  makespan : float;
  final_config : Configuration.t;
}

(* -- metrics (registered once, registry is process-wide) ------------------- *)

let m_depth = lazy (Metrics.gauge "daemon.queue.depth")
let m_peak = lazy (Metrics.gauge "daemon.queue.depth.peak")
let m_age = lazy (Metrics.gauge "daemon.queue.oldest_age_s")
let m_lag = lazy (Metrics.histogram "daemon.decision.lag_s")
let m_level = lazy (Metrics.gauge "daemon.ladder.level")
let m_subs = lazy (Metrics.counter "daemon.submissions")
let m_admitted = lazy (Metrics.counter "daemon.admitted")
let m_rejected = lazy (Metrics.counter "daemon.rejected")
let m_rounds = lazy (Metrics.counter "daemon.rounds")
let m_deferred = lazy (Metrics.counter "daemon.rounds.deferred")
let m_raised = lazy (Metrics.counter "daemon.triggers.raised")

(* -- deterministic instance ------------------------------------------------ *)

type instance = {
  config0 : Configuration.t;
  vjobs : Vjob.t array;  (* index = vjob id = arrival index *)
  programs : Vm.id -> Vworkload.Program.t;
  arrivals : Arrivals.arrival array;
  max_node_mem : int;
}

(* Everything derives from the seed: node fleet, per-vjob VM counts and
   memories, per-VM programs (a quarter get a mid-life idle phase — the
   return to compute is the organic load spike), arrival instants. *)
let build_instance (c : config) =
  let arrivals =
    Array.of_list
      (Arrivals.generate
         {
           Arrivals.seed = c.seed;
           count = c.submissions;
           base_rate = c.base_rate;
           burst_rate = c.burst_rate;
           mean_calm_s = c.mean_calm_s;
           mean_burst_s = c.mean_burst_s;
         })
  in
  let rng = Random.State.make [| c.seed; 0xdae0 |] in
  let nodes =
    Array.init c.nodes (fun i ->
        Node.make ~id:i
          ~name:(Printf.sprintf "N%d" i)
          ~cpu_capacity:c.node_cpu ~memory_mb:c.node_mem)
  in
  let vms = ref [] in
  let progs = ref [] in
  let next_vm = ref 0 in
  let jobs = ref [] in
  Array.iteri
    (fun j (a : Arrivals.arrival) ->
      let nv = 1 + Random.State.int rng 2 in
      let ids = List.init nv (fun k -> !next_vm + k) in
      next_vm := !next_vm + nv;
      List.iter
        (fun id ->
          let mem = 512 + (256 * Random.State.int rng 3) in
          let work = 240. +. float_of_int (Random.State.int rng 480) in
          let prog =
            if Random.State.int rng 4 = 0 then
              [
                Vworkload.Program.Compute (work /. 2.);
                Vworkload.Program.Idle
                  (60. +. float_of_int (Random.State.int rng 120));
                Vworkload.Program.Compute (work /. 2.);
              ]
            else [ Vworkload.Program.Compute work ]
          in
          vms :=
            Vm.make ~id
              ~name:(Printf.sprintf "sub%04d-vm%d" j id)
              ~memory_mb:mem
            :: !vms;
          progs := prog :: !progs)
        ids;
      jobs :=
        Vjob.make ~id:j
          ~name:(Printf.sprintf "sub%04d" j)
          ~vms:ids ~submit_time:a.Arrivals.at_s ()
        :: !jobs)
    arrivals;
  let vms = Array.of_list (List.rev !vms) in
  let progs = Array.of_list (List.rev !progs) in
  {
    config0 = Configuration.make ~nodes ~vms;
    vjobs = Array.of_list (List.rev !jobs);
    programs = (fun vm -> progs.(vm));
    arrivals;
    max_node_mem = c.node_mem;
  }

let vjob_terminated config vjob =
  List.for_all
    (fun vm_id -> Configuration.state config vm_id = Configuration.Terminated)
    (Vjob.vms vjob)

let last_arrival instance =
  Array.fold_left
    (fun acc (a : Arrivals.arrival) -> Float.max acc a.Arrivals.at_s)
    1. instance.arrivals

let crash_schedule (c : config) instance =
  if c.crashes = 0 then []
  else
    Injector.crash_script ~seed:c.seed ~node_count:c.nodes
      ~horizon_s:(last_arrival instance) ~count:c.crashes ()
    |> List.filter_map (function
         | Injector.Crash_node { node; at_s } -> Some (node, at_s)
         | Injector.Fail_rate _ | Injector.Fail_nth _ | Injector.Slowdown _
         | Injector.Predicate _ -> None)

(* -- the event loop -------------------------------------------------------- *)

(* What distinguishes a cold start from a resume: already-settled
   admission state, arrivals still owed, crashes already enacted, the
   ladder's rung and a reconciled in-flight plan. *)
type boot = {
  instance : instance;
  journal : Journal.t option;
  admitted0 : (int, unit) Hashtbl.t;
  rejected0 : int;
  requeued : Admission.entry list;
  missed : int list;  (* arrivals owed immediately (lost to the crash) *)
  pending : (int * float) list;  (* (vjob id, engine time) future arrivals *)
  pre_crashes : (Node.id * float) list;
  future_crashes : (Node.id * float) list;
  level0 : Ladder.level;
  initial_config : Configuration.t;
  initial_plan : (Configuration.t * Plan.t) option;
  resumed : bool;
}

let decide_model_s = function
  (* modeled decision latency per rung, in simulated seconds: the whole
     point of stepping down the ladder is buying back this time *)
  | Ladder.Full -> 5.0
  | Ladder.Shrunk -> 2.0
  | Ladder.Heuristic -> 0.5
  | Ladder.Defer -> 0.

let run_core (c : config) (b : boot) =
  let instance = b.instance in
  let engine = Engine.create () in
  let cluster =
    Cluster.create ~engine ~config:b.initial_config
      ~vjobs:(Array.to_list instance.vjobs)
      ~programs:instance.programs ()
  in
  let collector =
    Collector.create (fun () ->
        (Engine.now engine, Cluster.cpu_readings cluster))
  in
  let injector =
    Injector.create ~seed:c.seed
      [ Injector.Fail_rate { kind = None; rate = c.fail_rate } ]
  in
  let policy =
    Supervisor.make_policy ~timeout_factor:c.timeout_factor
      ~max_retries:c.retries ()
  in
  let adm = Admission.create ~cap:c.admission_cap () in
  List.iter (Admission.requeue adm) b.requeued;
  let trig = Triggers.create ~debounce_s:c.debounce_s () in
  let ladder = Ladder.create ~config:c.ladder ~level:b.level0 () in
  let admitted = b.admitted0 in
  let rejected = ref b.rejected0 in
  let jappend r = Option.iter (fun j -> Journal.append j r) b.journal in
  let emit = Option.map (fun j r -> Journal.append j r) b.journal in
  let switch_id =
    ref
      (match b.journal with
      | Some j -> Recovery.next_switch_id (Journal.records j)
      | None -> 0)
  in
  let ffd = Decision.ffd_only () in
  let d_full =
    if c.deterministic then ffd
    else
      Entropy_place.Portfolio.decision ~engine:`Portfolio
        ~deadline:c.full_deadline ()
  in
  let d_shrunk =
    if c.deterministic then ffd
    else
      Entropy_place.Portfolio.decision ~engine:`Portfolio
        ~deadline:c.shrunk_deadline ()
  in
  let decision_of = function
    | Ladder.Full -> d_full
    | Ladder.Shrunk -> d_shrunk
    | Ladder.Heuristic | Ladder.Defer -> ffd
  in
  let done_flag = ref false in
  let rounds = ref 0 in
  let deferred_rounds = ref 0 in
  let defer_streak = ref 0 in
  let max_defer_streak = ref 0 in
  let livelock_episodes = ref 0 in
  let switches = ref [] in
  let repairs = ref 0 in
  let crash_log = ref [] in
  let transitions = ref [] in
  let arrivals_left = ref (List.length b.missed + List.length b.pending) in
  (* deterministic queue order: hashtable fold order is not *)
  let live_admitted () =
    let cfg = Cluster.config cluster in
    Hashtbl.fold
      (fun id () acc ->
        let vj = instance.vjobs.(id) in
        if vjob_terminated cfg vj then acc else vj :: acc)
      admitted []
    |> List.sort (fun a b -> compare (Vjob.id a) (Vjob.id b))
  in
  let work_done () =
    !arrivals_left = 0 && Admission.depth adm = 0 && live_admitted () = []
  in
  (* a parked vjob (any VM suspended or still waiting) generates no
     events of its own: only a re-decision can move it *)
  let parked () =
    let cfg = Cluster.config cluster in
    List.exists
      (fun vj ->
        List.exists
          (fun vm ->
            match Configuration.state cfg vm with
            | Configuration.Running _ | Configuration.Terminated -> false
            | Configuration.Sleeping _ | Configuration.Sleeping_ram _
            | Configuration.Waiting -> true)
          (Vjob.vms vj))
      (live_admitted ())
  in
  let wake_backoff = ref c.debounce_s in
  let note_queue_metrics now =
    if !Obs.enabled then begin
      let d = float_of_int (Admission.depth adm) in
      Metrics.set (Lazy.force m_depth) d;
      Metrics.set_max (Lazy.force m_peak) d;
      Metrics.set (Lazy.force m_age) (Admission.oldest_age adm ~now)
    end
  in
  let rec on_fire () =
    if !done_flag then ()
    else
      match Triggers.fire trig with
      | None -> ()
      | Some p ->
        let now = Engine.now engine in
        let lag = Float.max 0. (now -. p.Triggers.first_at) in
        incr rounds;
        if !Obs.enabled then begin
          Metrics.incr (Lazy.force m_rounds);
          Metrics.observe (Lazy.force m_lag) lag;
          Obs.instant ~cat:"daemon"
            ~args:
              [
                ("reasons", Trace.S (String.concat "," p.Triggers.reasons));
                ("events", Trace.I p.Triggers.events);
              ]
            "daemon.round"
        end;
        let pressure =
          {
            Ladder.queue_fill = Admission.fill adm;
            oldest_age_s = Admission.oldest_age adm ~now;
            decision_lag_s = lag;
          }
        in
        (match Ladder.observe ladder ~now pressure with
        | Some tr ->
          transitions := tr :: !transitions;
          jappend
            (Jrecord.Ladder
               {
                 at_s = now;
                 from_level = Ladder.index tr.Ladder.from_level;
                 to_level = Ladder.index tr.Ladder.to_level;
                 reason = tr.Ladder.cause;
               });
          if !Obs.enabled then
            Metrics.set (Lazy.force m_level)
              (float_of_int (Ladder.index tr.Ladder.to_level));
          if tr.Ladder.to_level = Ladder.Defer then begin
            (* the hold is the bottom rung's exit ticket: make sure a
               trigger exists to take it *)
            let at = Float.max (now +. 0.001) (Ladder.defer_until ladder) in
            ignore
              (Engine.schedule engine ~at (fun () ->
                   trigger_raise "defer hold expired"))
          end
        | None -> ());
        (match Ladder.level ladder with
        | Ladder.Defer ->
          (* serve the current configuration: no admission, no decision *)
          incr deferred_rounds;
          if !Obs.enabled then Metrics.incr (Lazy.force m_deferred);
          incr defer_streak;
          if !defer_streak > !max_defer_streak then
            max_defer_streak := !defer_streak;
          Log.debug (fun m ->
              m "round %d deferred (%a)" !rounds Ladder.pp_pressure pressure);
          settle_and_rearm ()
        | level ->
          defer_streak := 0;
          let entries = Admission.take adm ~max:c.admit_batch in
          List.iter
            (fun (e : Admission.entry) ->
              Hashtbl.replace admitted e.Admission.vjob ();
              if !Obs.enabled then Metrics.incr (Lazy.force m_admitted);
              jappend
                (Jrecord.Submission
                   {
                     at_s = now;
                     vjob = e.Admission.vjob;
                     vms = e.Admission.vms;
                     disposition = Jrecord.Admitted;
                   }))
            entries;
          note_queue_metrics now;
          let delay = decide_model_s level in
          if delay <= 0. then decide level
          else
            ignore (Engine.schedule_after engine ~delay (fun () -> decide level)))
  and decide level =
    if !done_flag then ()
    else begin
      Collector.poll collector;
      let demand = Collector.demand collector in
      let queue = live_admitted () in
      if queue = [] then settle_and_rearm ()
      else begin
        let cfg = Cluster.config cluster in
        let finished =
          List.filter_map
            (fun vj ->
              if Cluster.completed cluster vj then Some (Vjob.id vj) else None)
            queue
        in
        let obs = { Decision.config = cfg; demand; queue; finished } in
        let d = decision_of level in
        let result =
          if !Obs.enabled then
            Obs.span ~cat:"daemon" ~name:"daemon.decide"
              ~args:[ ("level", Trace.S (Ladder.to_string level)) ]
              (fun () -> d.Decision.decide obs)
          else d.Decision.decide obs
        in
        if Plan.is_empty result.Optimizer.plan then begin
          (* an empty plan can still carry state: every current/target
             difference that derives no action is pure bookkeeping (a
             finished vjob's suspended image discarded, a waiting VM
             cancelled). Commit it directly or the vjob never reaches
             Terminated — there is no action left that ever would. *)
          let target = result.Optimizer.target in
          let changed = ref false in
          let vm_count = Configuration.vm_count cfg in
          (try
             for vm = 0 to vm_count - 1 do
               if Configuration.state cfg vm <> Configuration.state target vm
               then raise Exit
             done
           with Exit -> changed := true);
          if !changed then begin
            Log.debug (fun m ->
                m "empty plan with bookkeeping-only target: committing \
                   directly (finished [%a])"
                  Fmt.(list ~sep:sp int)
                  finished);
            Cluster.set_config cluster target
          end;
          settle_and_rearm ()
        end
        else
          exec ~depth:0 ~demand ~target:result.Optimizer.target
            result.Optimizer.plan
      end
    end
  and exec ~depth ~demand ~target plan =
    let sw = !switch_id in
    incr switch_id;
    jappend
      (Jrecord.Switch_begin
         {
           switch = sw;
           at_s = Engine.now engine;
           source = Cluster.config cluster;
           target;
           plan;
           demand;
           seed = Some (Injector.seed injector);
         });
    let on_done (r : Executor.record) =
      jappend
        (Jrecord.Switch_end
           {
             switch = sw;
             at_s = Engine.now engine;
             aborted = r.Executor.aborted;
           });
      switches := r :: !switches;
      let degraded = r.Executor.failed > 0 in
      if degraded && depth < c.max_repairs then chase ~depth ~target r
      else begin
        if degraded then begin
          (* repair chain exhausted with residue: the daemon-level
             analogue of Loop.Degraded — counted, never spun on *)
          incr livelock_episodes;
          Log.warn (fun m ->
              m "switch %d still degraded after %d repairs (%d failed VMs)"
                sw depth r.Executor.failed)
        end;
        settle_and_rearm ()
      end
    in
    Executor.execute ~injector ~policy ~abort_on_failure:true ?emit ~switch:sw
      cluster plan ~on_done
  and chase ~depth ~target r =
    Collector.poll collector;
    let before = Cluster.config cluster in
    let demand = Collector.demand collector in
    let queue = live_admitted () in
    match
      Repair.repair ~vjobs:queue ~current:before ~target ~demand ~queue
        ~failed_vms:r.Executor.failed_vms ~lost_nodes:r.Executor.lost_nodes ()
    with
    | Some o ->
      incr repairs;
      exec ~depth:(depth + 1) ~demand ~target:o.Repair.target o.Repair.plan
    | None -> settle_and_rearm ()
  and settle_and_rearm () =
    let now = Engine.now engine in
    if work_done () then begin
      done_flag := true;
      ignore (Triggers.settle trig ~now)
    end
    else begin
      match Triggers.settle trig ~now with
      | Some at -> ignore (Engine.schedule engine ~at on_fire)
      | None ->
        (* no raise arrived while busy, but leftover work must not
           strand: a queued backlog re-arms at once, parked vjobs retry
           on an exponential backoff (a wake can keep failing — a crash
           may have eaten the capacity for good) *)
        if Admission.depth adm > 0 then trigger_raise "queued backlog"
        else if parked () then begin
          let delay = !wake_backoff in
          wake_backoff := Float.min 600. (!wake_backoff *. 2.);
          ignore
            (Engine.schedule_after engine ~delay (fun () ->
                 trigger_raise "parked vjobs"))
        end
    end
  and trigger_raise reason =
    if not !done_flag then begin
      let now = Engine.now engine in
      if !Obs.enabled then Metrics.incr (Lazy.force m_raised);
      match Triggers.raise_ trig ~now ~reason with
      | Some at -> ignore (Engine.schedule engine ~at on_fire)
      | None -> ()
    end
  in
  let submit_vjob id =
    decr arrivals_left;
    if not !done_flag then begin
      let now = Engine.now engine in
      let vj = instance.vjobs.(id) in
      let vm_ids = Vjob.vms vj in
      let nvms = List.length vm_ids in
      if !Obs.enabled then Metrics.incr (Lazy.force m_subs);
      let unsatisfiable =
        List.exists
          (fun vm_id ->
            Vm.memory_mb (Configuration.vm instance.config0 vm_id)
            > instance.max_node_mem)
          vm_ids
      in
      let disposition =
        if unsatisfiable then
          (* no queue slot can help a VM no node could ever host *)
          `Rejected "unsatisfiable: VM memory exceeds node capacity"
        else Admission.submit adm ~now ~vjob:id ~vms:nvms
      in
      match disposition with
      | `Queued ->
        jappend
          (Jrecord.Submission
             { at_s = now; vjob = id; vms = nvms; disposition = Jrecord.Queued });
        note_queue_metrics now;
        trigger_raise "vjob arrival"
      | `Rejected reason ->
        incr rejected;
        if !Obs.enabled then Metrics.incr (Lazy.force m_rejected);
        jappend
          (Jrecord.Submission
             {
               at_s = now;
               vjob = id;
               vms = nvms;
               disposition = Jrecord.Rejected reason;
             })
    end
  in
  List.iter
    (fun id ->
      ignore (Engine.schedule engine ~at:0.001 (fun () -> submit_vjob id)))
    b.missed;
  List.iter
    (fun (id, at) ->
      ignore
        (Engine.schedule engine ~at:(Float.max 0.002 at) (fun () ->
             submit_vjob id)))
    b.pending;
  (* crashes already enacted before the kill but not yet reflected in
     the journal-projected configuration: re-enact them silently *)
  List.iter
    (fun (node, _) -> ignore (Cluster.crash_node cluster node))
    b.pre_crashes;
  List.iter
    (fun (node, at) ->
      ignore
        (Engine.schedule engine ~at:(Float.max 0.003 at) (fun () ->
             if (not !done_flag) && Cluster.node_alive cluster node then begin
               let affected = Cluster.crash_node cluster node in
               crash_log := (node, Engine.now engine) :: !crash_log;
               Log.info (fun m ->
                   m "node N%d crashed at %.0fs: %d vjobs reset" node
                     (Engine.now engine) (List.length affected));
               trigger_raise "node crash"
             end)))
    b.future_crashes;
  let completions_seen = ref (List.length (Cluster.completions cluster)) in
  Cluster.on_change cluster (fun () ->
      let n = List.length (Cluster.completions cluster) in
      if n > !completions_seen then begin
        completions_seen := n;
        (* freed capacity: parked vjobs get a fresh (cheap) wake retry *)
        wake_backoff := c.debounce_s;
        trigger_raise "vjob completion"
      end);
  (* periodic monitoring poll; an overload onset is the load-spike
     trigger (a VM leaving its idle phase, a crash shrinking capacity) *)
  let overloaded = ref false in
  let rec poll_loop () =
    if not !done_flag then begin
      Collector.poll collector;
      let over =
        Configuration.overloaded_nodes (Cluster.config cluster)
          (Cluster.demand cluster)
        <> []
      in
      if over && not !overloaded then trigger_raise "load spike";
      overloaded := over;
      ignore (Engine.schedule_after engine ~delay:c.poll_period poll_loop)
    end
  in
  poll_loop ();
  (match b.initial_plan with
  | Some (target, plan) when not (Plan.is_empty plan) ->
    (* the resume path: finish the reconciled in-flight switch first.
       Claim the trigger machine for it (Idle -> Armed -> Busy) so an
       early arrival cannot start a second, overlapping decision round —
       everything raised meanwhile coalesces and re-arms at settle *)
    ignore (Triggers.raise_ trig ~now:0. ~reason:"resume reconciliation");
    ignore (Triggers.fire trig);
    ignore
      (Engine.schedule engine ~at:0.5 (fun () ->
           Collector.poll collector;
           let demand = Collector.demand collector in
           exec ~depth:0 ~demand ~target plan))
  | Some _ | None ->
    (* a resume can come back with parked vjobs or a requeued backlog
       and no event in sight: kick one boot round *)
    ignore
      (Engine.schedule engine ~at:0.004 (fun () ->
           if Admission.depth adm > 0 || parked () then
             trigger_raise "daemon start")));
  let horizon =
    match c.kill_at with
    | Some k -> Float.min k c.max_time
    | None -> c.max_time
  in
  Engine.run ~until:horizon engine;
  let final_config = Cluster.config cluster in
  let admitted_ids =
    Hashtbl.fold (fun id () acc -> id :: acc) admitted []
    |> List.sort compare
  in
  let completed =
    List.length
      (List.filter
         (fun id -> vjob_terminated final_config instance.vjobs.(id))
         admitted_ids)
  in
  List.iter
    (fun id ->
      let vj = instance.vjobs.(id) in
      if not (vjob_terminated final_config vj) then
        Log.debug (fun m ->
            m "vjob %d not terminated at exit: %a" id
              Fmt.(list ~sep:comma Configuration.pp_vm_state)
              (List.map (Configuration.state final_config) (Vjob.vms vj))))
    admitted_ids;
  let all_terminated = completed = List.length admitted_ids in
  let vm_count = Configuration.vm_count final_config in
  let final_viable =
    Configuration.is_viable final_config
      (Demand.uniform ~vm_count Vworkload.Program.compute_demand)
  in
  let makespan =
    List.fold_left
      (fun acc (_, t) -> Float.max acc t)
      0.
      (Cluster.completions cluster)
  in
  let defer_round_bound =
    1
    + int_of_float
        (Float.ceil (c.ladder.Ladder.defer_hold_s /. Float.max 1. c.debounce_s))
  in
  let action_failures =
    List.fold_left (fun a (r : Executor.record) -> a + r.Executor.failed) 0
      !switches
  in
  {
    submissions = List.length admitted_ids + !rejected + Admission.depth adm;
    admitted = List.length admitted_ids;
    rejected = !rejected;
    completed;
    all_terminated;
    final_viable;
    max_queue_depth = Admission.peak adm;
    admission_cap = c.admission_cap;
    queue_bounded = Admission.peak adm < c.admission_cap;
    decision_rounds = !rounds;
    deferred_rounds = !deferred_rounds;
    max_defer_streak = !max_defer_streak;
    defer_round_bound;
    livelock_episodes = !livelock_episodes;
    degradation_bounded =
      !livelock_episodes = 0 && !max_defer_streak <= defer_round_bound;
    ladder_ups = Ladder.ups ladder;
    ladder_downs = Ladder.downs ladder;
    transitions = List.rev !transitions;
    final_level = Ladder.level ladder;
    triggers_raised = Triggers.raised_total trig;
    triggers_coalesced = Triggers.coalesced_total trig;
    switches = List.length !switches;
    repairs = !repairs;
    action_failures;
    crashes = List.rev !crash_log;
    killed = c.kill_at <> None && not (work_done ());
    resumed = b.resumed;
    makespan;
    final_config;
  }

(* -- cold start ------------------------------------------------------------ *)

let run ?journal c =
  let instance = build_instance c in
  let pending =
    let acc = ref [] in
    Array.iteri
      (fun j (a : Arrivals.arrival) -> acc := (j, a.Arrivals.at_s) :: !acc)
      instance.arrivals;
    List.rev !acc
  in
  Log.info (fun m ->
      m "daemon run: %d submissions over %d nodes (seed %d), cap %d, %d \
         scripted crashes"
        c.submissions c.nodes c.seed c.admission_cap c.crashes);
  run_core c
    {
      instance;
      journal;
      admitted0 = Hashtbl.create 97;
      rejected0 = 0;
      requeued = [];
      missed = [];
      pending;
      pre_crashes = [];
      future_crashes = crash_schedule c instance;
      level0 = Ladder.Full;
      initial_config = instance.config0;
      initial_plan = None;
      resumed = false;
    }

(* -- resume ---------------------------------------------------------------- *)

let resume ~journal ~records c =
  let instance = build_instance c in
  let crash_time =
    List.fold_left (fun acc r -> Float.max acc (Jrecord.at_s r)) 0. records
  in
  (* settled dispositions: the last journaled one per vjob wins *)
  let disp : (int, Jrecord.disposition) Hashtbl.t = Hashtbl.create 97 in
  let level0 = ref Ladder.Full in
  List.iter
    (fun r ->
      match r with
      | Jrecord.Submission { vjob; disposition; _ } ->
        Hashtbl.replace disp vjob disposition
      | Jrecord.Ladder { to_level; _ } -> (
        match Ladder.of_index to_level with
        | Some l -> level0 := l
        | None -> ())
      | Jrecord.Switch_begin _ | Jrecord.Action_started _
      | Jrecord.Action_done _ | Jrecord.Action_failed _
      | Jrecord.Pool_committed _ | Jrecord.Switch_end _ -> ())
    records;
  let state = Recovery.replay records in
  let observed =
    match state with
    | Some st -> Recovery.projected_config st
    | None -> instance.config0
  in
  let admitted0 = Hashtbl.create 97 in
  let rejected0 = ref 0 in
  let requeued = ref [] in
  Array.iter
    (fun vj ->
      let id = Vjob.id vj in
      match Hashtbl.find_opt disp id with
      | Some Jrecord.Admitted -> Hashtbl.replace admitted0 id ()
      | Some (Jrecord.Rejected _) -> incr rejected0
      | Some Jrecord.Queued ->
        (* queued but never admitted before the crash: back in line *)
        requeued :=
          {
            Admission.vjob = id;
            vms = List.length (Vjob.vms vj);
            submitted_at = 0.;
          }
          :: !requeued
      | None -> ())
    instance.vjobs;
  (* arrivals the dead daemon never disposed of: those already due are
     re-submitted at once, the rest keep their schedule (shifted — the
     resumed engine restarts at zero) *)
  let missed = ref [] in
  let pending = ref [] in
  Array.iteri
    (fun id (a : Arrivals.arrival) ->
      if not (Hashtbl.mem disp id) then
        if a.Arrivals.at_s <= crash_time then missed := id :: !missed
        else pending := (id, a.Arrivals.at_s -. crash_time) :: !pending)
    instance.arrivals;
  let all_crashes = crash_schedule c instance in
  let pre_crashes = List.filter (fun (_, t) -> t <= crash_time) all_crashes in
  let future_crashes =
    List.filter_map
      (fun (n, t) -> if t > crash_time then Some (n, t -. crash_time) else None)
      all_crashes
  in
  let initial_plan =
    match state with
    | Some st when not st.Recovery.ended -> (
      let queue =
        Array.to_list instance.vjobs
        |> List.filter (fun vj ->
               Hashtbl.mem admitted0 (Vjob.id vj)
               && not (vjob_terminated observed vj))
      in
      let rec_ = Recovery.reconcile ~vjobs:queue ~state:st ~observed () in
      match rec_.Recovery.plan with
      | Some plan -> Some (rec_.Recovery.target, plan)
      | None -> (
        match
          Repair.repair_residue ~vjobs:queue ~current:observed
            ~target:rec_.Recovery.target ~demand:st.Recovery.demand ~queue
            rec_.Recovery.residue ()
        with
        | Some o -> Some (o.Repair.target, o.Repair.plan)
        | None -> None))
    | Some _ | None -> None
  in
  Log.info (fun m ->
      m "daemon resume: %d records, crash at %.0fs, %d admitted / %d \
         rejected / %d requeued settled, %d arrivals owed, ladder %a"
        (List.length records) crash_time (Hashtbl.length admitted0) !rejected0
        (List.length !requeued)
        (List.length !missed + List.length !pending)
        Ladder.pp !level0);
  run_core c
    {
      instance;
      journal = Some journal;
      admitted0;
      rejected0 = !rejected0;
      requeued = List.rev !requeued;
      missed = List.rev !missed;
      pending = List.rev !pending;
      pre_crashes;
      future_crashes;
      level0 = !level0;
      initial_config = observed;
      initial_plan;
      resumed = true;
    }

(* -- reporting ------------------------------------------------------------- *)

let to_json r =
  Json.Obj
    [
      ("submissions", Json.Int r.submissions);
      ("admitted", Json.Int r.admitted);
      ("rejected", Json.Int r.rejected);
      ("completed", Json.Int r.completed);
      ("all_terminated", Json.Bool r.all_terminated);
      ("final_viable", Json.Bool r.final_viable);
      ("max_queue_depth", Json.Int r.max_queue_depth);
      ("admission_cap", Json.Int r.admission_cap);
      ("queue_bounded", Json.Bool r.queue_bounded);
      ("decision_rounds", Json.Int r.decision_rounds);
      ("deferred_rounds", Json.Int r.deferred_rounds);
      ("max_defer_streak", Json.Int r.max_defer_streak);
      ("defer_round_bound", Json.Int r.defer_round_bound);
      ("livelock_episodes", Json.Int r.livelock_episodes);
      ("degradation_bounded", Json.Bool r.degradation_bounded);
      ("ladder_ups", Json.Int r.ladder_ups);
      ("ladder_downs", Json.Int r.ladder_downs);
      ( "transitions",
        Json.List
          (List.map
             (fun (t : Ladder.transition) ->
               Json.Obj
                 [
                   ("at_s", Json.Float t.Ladder.at_s);
                   ("from", Json.String (Ladder.to_string t.Ladder.from_level));
                   ("to", Json.String (Ladder.to_string t.Ladder.to_level));
                   ("cause", Json.String t.Ladder.cause);
                 ])
             r.transitions) );
      ("final_level", Json.String (Ladder.to_string r.final_level));
      ("triggers_raised", Json.Int r.triggers_raised);
      ("triggers_coalesced", Json.Int r.triggers_coalesced);
      ("switches", Json.Int r.switches);
      ("repairs", Json.Int r.repairs);
      ("action_failures", Json.Int r.action_failures);
      ( "crashes",
        Json.List
          (List.map
             (fun (n, t) ->
               Json.Obj [ ("node", Json.Int n); ("at_s", Json.Float t) ])
             r.crashes) );
      ("killed", Json.Bool r.killed);
      ("resumed", Json.Bool r.resumed);
      ("makespan_s", Json.Float r.makespan);
    ]

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>%d submissions: %d admitted, %d rejected, %d completed%s@,\
     queue: peak %d / cap %d (%s)@,\
     rounds: %d (%d deferred, max streak %d/%d), %d switches, %d repairs@,\
     ladder: %d up / %d down, final %a; triggers: %d raised, %d coalesced@,\
     faults: %d action failures, %d crashes, %d livelock episodes@,\
     makespan %.0f s, final configuration %s%s@]"
    r.submissions r.admitted r.rejected r.completed
    (if r.all_terminated then " (all admitted terminated)" else "")
    r.max_queue_depth r.admission_cap
    (if r.queue_bounded then "bounded" else "OVERFLOWED")
    r.decision_rounds r.deferred_rounds r.max_defer_streak r.defer_round_bound
    r.switches r.repairs r.ladder_ups r.ladder_downs Ladder.pp r.final_level
    r.triggers_raised r.triggers_coalesced r.action_failures
    (List.length r.crashes) r.livelock_episodes r.makespan
    (if r.final_viable then "viable" else "NOT viable")
    (if r.killed then " [killed]" else "")
