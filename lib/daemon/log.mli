(** Log source for the daemon layer ([entropy.daemon]). *)

val src : Logs.Src.t

include Logs.LOG
