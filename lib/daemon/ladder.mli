(** Graceful-degradation ladder.

    When the daemon falls behind — the submission queue fills, queued
    submissions age, decisions lag their triggers — it trades decision
    quality for latency one rung at a time instead of collapsing:

    + {!Full}: the whole solver portfolio under the full deadline.
    + {!Shrunk}: the portfolio under a shrunken deadline.
    + {!Heuristic}: first-fit-decreasing incumbent only, no
      optimisation.
    + {!Defer}: serve the current configuration; no re-decision at all
      until the hold expires.

    Escalation is immediate (any pressure signal at or above its
    threshold steps one rung down the quality ladder); relaxation is
    hysteretic (every signal strictly below its — lower — threshold for
    [calm_rounds] consecutive observations steps one rung back up), so
    the ladder cannot flap on a noisy boundary. [Defer] is self-limiting:
    after [defer_hold_s] of simulated time the ladder forcibly steps
    back to {!Heuristic} and the daemon re-decides, so degradation is
    always bounded — the daemon can park, but never forever.

    Every transition is reported to the caller (the daemon journals it
    as a {!Entropy_journal.Record.Ladder} record) with the pressure
    reading that caused it. *)

type level = Full | Shrunk | Heuristic | Defer

val levels : level list
(** Best to worst. *)

val index : level -> int
(** Ordinal, 0 = {!Full} — the form journaled in ladder records. *)

val of_index : int -> level option
val to_string : level -> string
val pp : Format.formatter -> level -> unit

type pressure = {
  queue_fill : float;      (** admission-queue fill fraction, [0,1) *)
  oldest_age_s : float;    (** age of the oldest queued submission *)
  decision_lag_s : float;  (** trigger raise -> decision start lag *)
}

val pp_pressure : Format.formatter -> pressure -> unit

type thresholds = { fill : float; age_s : float; lag_s : float }

type config = {
  escalate : thresholds;
      (** any signal at or above its threshold: one rung down *)
  relax : thresholds;
      (** all signals strictly below: a calm observation *)
  calm_rounds : int;  (** consecutive calm observations to step up *)
  defer_hold_s : float;
      (** simulated seconds parked at {!Defer} before the forced step
          back to {!Heuristic} *)
}

val default_config : config
(** Escalate at 75% fill / 180 s age / 60 s lag; relax below 25% / 30 s
    / 10 s for 3 rounds; 120 s defer hold. *)

type transition = {
  from_level : level;
  to_level : level;
  at_s : float;
  cause : string;  (** the signal (or expiry) that moved the ladder *)
}

val pp_transition : Format.formatter -> transition -> unit

type t

val create : ?config:config -> ?level:level -> unit -> t
(** [level] seeds the ladder (resume path: the journaled level).
    Raises [Invalid_argument] on a config whose relax thresholds are not
    below its escalate thresholds, non-positive [calm_rounds] or
    non-positive [defer_hold_s]. *)

val level : t -> level

val defer_until : t -> float
(** When the current {!Defer} hold expires; meaningless unless
    [level t = Defer]. *)

val observe : t -> now:float -> pressure -> transition option
(** One observation at the top of a decision round: step the ladder at
    most one rung and report the transition, if any. *)

val ups : t -> int
(** Escalations (quality lost) so far. *)

val downs : t -> int
(** Relaxations (quality regained), including forced Defer expiries. *)
