(* Log source for the control-plane daemon. Enable with e.g.
   [Logs.set_reporter (Logs_fmt.reporter ()); Logs.Src.set_level
   Log.src (Some Logs.Debug)]. *)

let src =
  Logs.Src.create "entropy.daemon"
    ~doc:"Online control-plane daemon (admission, triggers, ladder)"

include (val Logs.src_log src : Logs.LOG)
