(** The online control-plane daemon: an event-driven loop around the
    simulated cluster that survives overload.

    Where {!Vsim.Runner} polls on a fixed period over a closed set of
    vjobs, the daemon reacts to events — open-arrival submissions
    ({!Vworkload.Arrivals}), vjob completions, load spikes, scripted
    node crashes — through three overload defences:

    - {!Admission}: a hard-bounded FIFO submission queue; a storm can
      fill it to [cap - 1] but never past it, and everything beyond is
      rejected with a journaled reason.
    - {!Triggers}: debounced coalescing, so an event storm collapses
      into one re-decision instead of a decision per event.
    - {!Ladder}: graceful degradation from the full solver portfolio
      down to serve-the-current-configuration, driven by queue
      pressure and decision lag, every step journaled.

    Every admission decision and ladder transition goes through the
    write-ahead journal ({!Entropy_journal.Record.Submission} /
    [Ladder] records) alongside the usual switch records, so
    {!resume} can rebuild the daemon mid-storm: queued-but-unadmitted
    submissions are re-queued, the in-flight switch is reconciled and
    re-executed idempotently, missed arrivals are re-submitted and the
    ladder restarts on its journaled rung. *)

open Entropy_core

type config = {
  seed : int;            (** drives instance, arrivals, faults *)
  nodes : int;
  node_cpu : int;        (** hundredths of a core per node *)
  node_mem : int;        (** MB per node *)
  submissions : int;     (** open arrivals to generate *)
  base_rate : float;     (** calm arrival rate, arrivals/s *)
  burst_rate : float;    (** burst arrival rate, arrivals/s *)
  mean_calm_s : float;
  mean_burst_s : float;
  admission_cap : int;   (** submission-queue bound *)
  admit_batch : int;     (** admissions per decision round *)
  debounce_s : float;    (** trigger coalescing window *)
  ladder : Ladder.config;
  full_deadline : float;    (** portfolio wall deadline at Full *)
  shrunk_deadline : float;  (** portfolio wall deadline at Shrunk *)
  deterministic : bool;
      (** replace the wall-clock-bounded portfolio with the FFD
          incumbent at every rung: bit-reproducible runs (the modeled
          decision latencies still differ per rung) *)
  fail_rate : float;     (** per-attempt action failure probability *)
  crashes : int;         (** scripted node crashes over the arrival span *)
  timeout_factor : float;
  retries : int;
  max_repairs : int;     (** immediate repair chain bound per switch *)
  poll_period : float;   (** monitoring poll (load-spike detection) *)
  kill_at : float option;
  max_time : float;
}

val default_config : config

type report = {
  submissions : int;   (** arrivals that fired before the horizon *)
  admitted : int;
  rejected : int;
  completed : int;     (** admitted vjobs whose VMs all terminated *)
  all_terminated : bool;
  final_viable : bool;
  max_queue_depth : int;
  admission_cap : int;
  queue_bounded : bool;  (** max depth stayed under the cap *)
  decision_rounds : int;
  deferred_rounds : int;
  max_defer_streak : int;
  defer_round_bound : int;
      (** the bound [max_defer_streak] is held to: one entry round plus
          the debounce-paced rounds one hold can contain *)
  livelock_episodes : int;
      (** switches still degraded after the whole repair chain — the
          daemon-level analogue of {!Entropy_core.Loop.Degraded} *)
  degradation_bounded : bool;
      (** no livelock episodes and every defer streak within bound *)
  ladder_ups : int;
  ladder_downs : int;
  transitions : Ladder.transition list;
  final_level : Ladder.level;
  triggers_raised : int;
  triggers_coalesced : int;
  switches : int;
  repairs : int;
  action_failures : int;
  crashes : (Node.id * float) list;
  killed : bool;
  resumed : bool;
  makespan : float;
  final_config : Configuration.t;
}

val to_json : report -> Entropy_obs.Json.t
val pp_report : Format.formatter -> report -> unit

val run : ?journal:Entropy_journal.Journal.t -> config -> report
(** One daemon episode from a cold start: generate the instance and the
    arrival schedule from [config.seed], run the event loop until every
    admitted vjob terminates (or [kill_at] / [max_time]). *)

val resume :
  journal:Entropy_journal.Journal.t ->
  records:Entropy_journal.Record.t list -> config -> report
(** Pick a killed daemon up from its journal: [records] is the journal
    as found on disk ({!Entropy_journal.Journal.load}), [journal] the
    reopened journal new records are appended to. [config] must match
    the killed run — the instance and arrival schedule are regenerated
    from its seed, and everything already settled in the journal
    (admissions, rejections, ladder rung, executed actions) is replayed
    rather than redone: a rejected submission stays rejected, an
    in-flight switch is reconciled and completed idempotently, and
    arrivals the dead daemon never saw are re-submitted. *)
