(** Trigger coalescing with debounce.

    Every event the daemon reacts to — a vjob arrival, a completion, a
    load spike, a node crash — raises a trigger. Rather than running one
    decision per event (an event storm would livelock the control loop
    in back-to-back decisions), triggers pass through a three-state
    debounce machine:

    {v Idle --raise--> Armed --(debounce elapses)--> Busy --settle--> Idle v}

    The first raise arms the machine and schedules a fire [debounce_s]
    later; every further raise before the fire — and every raise while a
    decision is in flight (Busy) — is coalesced into that one pending
    decision. {!settle} re-arms immediately when raises arrived during
    the decision, so no event is ever lost, and at most one decision
    per debounce window is ever in flight. *)

type state = Idle | Armed | Busy

val pp_state : Format.formatter -> state -> unit

type t

val create : ?debounce_s:float -> unit -> t
(** Raises [Invalid_argument] on a negative debounce. Default 5 s. *)

val state : t -> state

val raise_ : t -> now:float -> reason:string -> float option
(** Record one event. [Some fire_at]: the machine just armed — the
    caller must schedule {!fire} at [fire_at]. [None]: an earlier raise
    already armed it (or a decision is in flight); the event was
    coalesced. *)

type pending = {
  reasons : string list;  (** distinct coalesced reasons, arrival order *)
  events : int;           (** raises coalesced into this fire *)
  first_at : float;       (** earliest coalesced raise — the decision
                              lag clock starts here *)
}

val fire : t -> pending option
(** Consume the pending raises and go Busy. [None] when nothing is
    pending (a stale fire after the machine was consumed); the caller
    just returns. *)

val settle : t -> now:float -> float option
(** The decision (and its execution) finished. [Some fire_at] when
    raises arrived while Busy: the machine re-armed itself and the
    caller must schedule the next {!fire}. [None]: back to Idle. *)

val raised_total : t -> int
val fired_total : t -> int

val coalesced_total : t -> int
(** Raises that did not cause their own fire: [raised - fired]. *)
