(* entropyctl — inspect a cluster description and plan cluster-wide
   context switches against it.

     entropyctl check   cluster.ecl        viability + rule report
     entropyctl plan    cluster.ecl        one decision iteration + plan
     entropyctl actions cur.ecl new.ecl    raw plan between two specs
     entropyctl lint    cluster.ecl        static analysis of the CP
                                           model and the planned switch
     entropyctl profile                    one optimisation on a Fig. 10
                                           instance, per-phase timings *)

open Entropy_core
module Spec = Entropy_cli.Spec
module Obs = Entropy_obs.Obs

(* -- logging ---------------------------------------------------------------- *)

(* [-v] raises the global level (info, then debug); [--debug SRC] turns
   debug on for specific sources only ("cp" matches "entropy.cp"). *)
let setup_logs verbosity debug =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level
    (if verbosity >= 2 then Some Logs.Debug
     else if verbosity = 1 then Some Logs.Info
     else Some Logs.Warning);
  List.iter
    (fun name ->
      let matched =
        List.filter
          (fun src ->
            let n = Logs.Src.name src in
            n = name || n = "entropy." ^ name)
          (Logs.Src.list ())
      in
      if matched = [] then
        Printf.eprintf "entropyctl: unknown log source %S (known: %s)\n" name
          (String.concat ", "
             (List.sort String.compare
                (List.map Logs.Src.name (Logs.Src.list ()))))
      else
        List.iter (fun src -> Logs.Src.set_level src (Some Logs.Debug)) matched)
    debug

(* -- observability ----------------------------------------------------------- *)

let obs_setup trace metrics =
  if trace <> None || metrics <> None then begin
    Obs.enabled := true;
    Obs.reset ()
  end

let obs_write trace metrics =
  Option.iter Obs.write_trace trace;
  Option.iter Obs.write_metrics metrics

let load_or_exit path =
  try Spec.load path with
  | Spec.Parse_error { line; message } ->
    Printf.eprintf "%s:%d: %s\n" path line message;
    exit 2
  | Sys_error e ->
    Printf.eprintf "%s\n" e;
    exit 2

(* -- check ---------------------------------------------------------------- *)

let check path =
  let spec = load_or_exit path in
  let { Spec.config; demand; vjobs; rules; _ } = spec in
  let cpu, mem = Configuration.loads config demand in
  Printf.printf "%-12s%14s%16s\n" "node" "cpu use" "memory use";
  Array.iteri
    (fun i node ->
      Printf.printf "%-12s%9d /%4d%10d /%5d%s\n" (Spec.node_name spec i)
        cpu.(i) (Node.cpu_capacity node) mem.(i) (Node.memory_mb node)
        (if
           cpu.(i) > Node.cpu_capacity node || mem.(i) > Node.memory_mb node
         then "  OVERLOADED"
         else ""))
    (Configuration.nodes config);
  Printf.printf "\nviable: %b\n" (Configuration.is_viable config demand);
  List.iter
    (fun vj ->
      Printf.printf "vjob %-12s: %s\n" (Vjob.name vj)
        (match Configuration.vjob_state config vj with
        | Some s -> Lifecycle.state_to_string s
        | None -> "inconsistent (switch in progress?)"))
    vjobs;
  (match Placement_rules.violated config rules with
  | [] -> if rules <> [] then Printf.printf "all %d rules hold\n" (List.length rules)
  | violated ->
    List.iter
      (fun r -> Fmt.pr "rule violated: %a@." Placement_rules.pp r)
      violated;
    exit 1);
  if not (Configuration.is_viable config demand) then exit 1

(* -- plan ----------------------------------------------------------------- *)

let plan path cp_timeout ram trace metrics =
  obs_setup trace metrics;
  let spec =
    Obs.span ~cat:"loop" ~name:"loop.observe" (fun () -> load_or_exit path)
  in
  let { Spec.config; demand; vjobs; rules; _ } = spec in
  let decision =
    Decision.consolidation ~cp_timeout ~rules ~suspend_to_ram:ram ()
  in
  let observation = { Decision.config; demand; queue = vjobs; finished = [] } in
  let result =
    Obs.span ~cat:"loop" ~name:"loop.decide" (fun () ->
        decision.Decision.decide observation)
  in
  obs_write trace metrics;
  List.iter
    (fun vj ->
      let before = Configuration.vjob_state config vj in
      let after = Configuration.vjob_state result.Optimizer.target vj in
      if before <> after then
        Printf.printf "vjob %-12s: %s -> %s\n" (Vjob.name vj)
          (match before with
          | Some s -> Lifecycle.state_to_string s
          | None -> "?")
          (match after with
          | Some s -> Lifecycle.state_to_string s
          | None -> "?"))
    vjobs;
  if Plan.is_empty result.Optimizer.plan then
    print_endline "nothing to do: the configuration already matches"
  else begin
    Printf.printf "reconfiguration plan (cost %d):\n" result.Optimizer.cost;
    Fmt.pr "%a" (Spec.pp_plan spec) result.Optimizer.plan;
    let pooled =
      Schedule.makespan (Schedule.of_plan config result.Optimizer.plan)
    in
    (match
       Continuous.schedule ~vjobs ~current:config ~demand
         ~plan:result.Optimizer.plan ()
     with
    | continuous ->
      Printf.printf
        "estimated duration: %.0f s (pool barriers) / %.0f s (continuous)\n"
        pooled
        (Continuous.makespan continuous)
    | exception Continuous.Stuck _ ->
      Printf.printf "estimated duration: %.0f s (pool barriers)\n" pooled)
  end;
  if not result.Optimizer.rules_satisfied then begin
    print_endline "warning: some placement rules could not be satisfied";
    exit 1
  end

(* -- actions (diff between two specs) -------------------------------------- *)

let actions current_path target_path =
  let cur = load_or_exit current_path in
  let tgt = load_or_exit target_path in
  if
    Configuration.vm_count cur.Spec.config
    <> Configuration.vm_count tgt.Spec.config
  then begin
    Printf.eprintf "the two descriptions declare different VM sets\n";
    exit 2
  end;
  let target =
    Rgraph.normalize_sleeping ~current:cur.Spec.config tgt.Spec.config
  in
  match
    Planner.build_plan ~vjobs:cur.Spec.vjobs ~current:cur.Spec.config ~target
      ~demand:cur.Spec.demand ()
  with
  | plan ->
    Printf.printf "plan (cost %d):\n" (Plan.cost cur.Spec.config plan);
    Fmt.pr "%a" (Spec.pp_plan cur) plan
  | exception Planner.Stuck reason ->
    Printf.eprintf "no feasible plan: %s\n" reason;
    exit 1
  | exception Rgraph.Unreachable reason ->
    Printf.eprintf "impossible transition: %s\n" reason;
    exit 1

(* -- lint ------------------------------------------------------------------ *)

(* Static analysis of the reconfiguration problem behind a description:
   lint the CP model the optimizer would search, and replay the
   heuristic (FFD) plan through the independent verifier. *)

let lint path =
  let spec = load_or_exit path in
  let { Spec.config; demand; vjobs; rules; _ } = spec in
  let outcome = Rjsp.solve ~rules ~config ~demand ~queue:vjobs () in
  let placed = List.concat_map Vjob.vms outcome.Rjsp.running in
  let lint_findings =
    if placed = [] then begin
      (* an empty placement makes every model lint vacuous *)
      print_endline
        "model lint: skipped (no vjob admitted, the CP model has no \
         decision variables)";
      []
    end
    else begin
      let model =
        Optimizer.build_model ~rules ~current:config ~demand ~placed
          ~target_base:outcome.Rjsp.ffd_config ()
      in
      let findings =
        Entropy_analysis.Linter.lint ~obj:model.Optimizer.obj
          model.Optimizer.store
      in
      Fmt.pr "%a@." Entropy_analysis.Linter.pp_report findings;
      findings
    end
  in
  let target =
    Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config
  in
  let plan_findings =
    match Planner.build_plan ~vjobs ~current:config ~target ~demand () with
    | plan ->
      let findings =
        Entropy_analysis.Verifier.verify ~vjobs ~current:config ~target
          ~demand plan
      in
      if Plan.is_empty plan then
        print_endline "heuristic plan: empty (nothing to verify)"
      else
        Fmt.pr "heuristic plan (%d actions): %a@." (Plan.action_count plan)
          Entropy_analysis.Verifier.pp_report findings;
      findings
    | exception Planner.Stuck reason ->
      Printf.printf "heuristic plan: stuck (%s), nothing to verify\n" reason;
      []
  in
  if
    plan_findings <> []
    || List.exists
         (function
           | Entropy_analysis.Linter.Inconsistent_model _ -> true
           | _ -> false)
         lint_findings
  then exit 1

(* -- simulate ----------------------------------------------------------------- *)

let simulate path cp_timeout ram trace metrics =
  obs_setup trace metrics;
  let spec = load_or_exit path in
  let with_programs =
    Array.exists (fun p -> p <> []) spec.Spec.programs
  in
  if not with_programs then begin
    Printf.eprintf
      "no vm declares a program= field: nothing to simulate\n\
       (add e.g. `program=C600` to the vm lines)\n";
    exit 2
  end;
  let decision =
    Decision.consolidation ~cp_timeout ~rules:spec.Spec.rules
      ~suspend_to_ram:ram ()
  in
  let result =
    Vsim.Runner.run_custom ~decision ~config:spec.Spec.config
      ~vjobs:spec.Spec.vjobs
      ~programs:(fun vm -> spec.Spec.programs.(vm))
      ()
  in
  Printf.printf "completed %d vjobs in %.1f min (%d control-loop iterations)\n"
    (List.length result.Vsim.Runner.completions)
    (result.Vsim.Runner.makespan /. 60.)
    result.Vsim.Runner.iterations;
  List.iter
    (fun (vj, t) -> Printf.printf "  %-16s done at %7.0f s\n" (Vjob.name vj) t)
    result.Vsim.Runner.completions;
  Printf.printf "\ncluster-wide context switches:\n";
  List.iter
    (fun s -> Fmt.pr "  %a@." Vsim.Executor.pp_record s)
    result.Vsim.Runner.switches;
  obs_write trace metrics

(* -- profile ------------------------------------------------------------------ *)

(* One optimisation over a generated Figure 10-style instance, with the
   observability layer forced on: prints the plan summary, the per-phase
   wall-time table (from the trace spans) and the counter registry. *)

let profile vms cp_timeout restarts seed trace metrics =
  Obs.enabled := true;
  Obs.reset ();
  let instance =
    Obs.span ~cat:"profile" ~name:"profile.generate" (fun () ->
        Vworkload.Generator.generate
          { Vworkload.Generator.default_spec with vm_target = vms; seed })
  in
  let { Vworkload.Generator.config; demand; vjobs } = instance in
  let outcome =
    Obs.span ~cat:"profile" ~name:"profile.rjsp" (fun () ->
        Rjsp.solve ~config ~demand ~queue:vjobs ())
  in
  let restarts = if restarts = 0 then None else Some restarts in
  let result =
    Obs.span ~cat:"loop" ~name:"loop.decide" (fun () ->
        Optimizer.optimize ~timeout:cp_timeout ?restarts ~vjobs
          ~current:config ~demand
          ~placed:(List.concat_map Vjob.vms outcome.Rjsp.running)
          ~target_base:outcome.Rjsp.ffd_config
          ~fallback:outcome.Rjsp.ffd_config ())
  in
  Printf.printf "instance: %d VMs over %d nodes (seed %d), %d vjobs\n" vms
    (Configuration.node_count config)
    seed (List.length vjobs);
  Printf.printf "plan: %d actions, cost %d%s\n"
    (Plan.action_count result.Optimizer.plan)
    result.Optimizer.cost
    (if result.Optimizer.improved then " (CP beat the heuristic)" else "");
  (match result.Optimizer.stats with
  | Some st -> Fmt.pr "search: %a@." Fdcp.Search.pp_stats st
  | None -> ());
  Printf.printf "\n%-28s%8s%14s%12s\n" "phase" "count" "total ms" "mean us";
  List.iter
    (fun (name, count, total_us) ->
      Printf.printf "%-28s%8d%14.2f%12.1f\n" name count (total_us /. 1000.)
        (total_us /. float_of_int (max 1 count)))
    (Entropy_obs.Trace.aggregate ());
  (match Entropy_obs.Metrics.counters () with
  | [] -> ()
  | counters ->
    Printf.printf "\n%-36s%12s\n" "counter" "value";
    List.iter (fun (n, v) -> Printf.printf "%-36s%12d\n" n v) counters);
  obs_write trace metrics

(* -- cmdliner ---------------------------------------------------------------- *)

open Cmdliner

let file_arg index name =
  Arg.(required & pos index (some file) None & info [] ~docv:name)

let timeout_arg =
  Arg.(
    value & opt float 1.0
    & info [ "cp-timeout" ] ~doc:"CP solving timeout in seconds.")

let ram_arg =
  Arg.(
    value & flag
    & info [ "ram" ] ~doc:"Prefer suspend-to-RAM when memory allows.")

let logs_term =
  let verbose =
    Arg.(
      value & flag_all
      & info [ "v"; "verbose" ]
          ~doc:"Increase log verbosity (info; twice for debug).")
  in
  let debug =
    Arg.(
      value
      & opt (list string) []
      & info [ "debug" ] ~docv:"SRC"
          ~doc:
            "Comma-separated log sources to set to debug level (e.g. \
             $(b,cp,sim) for entropy.cp and entropy.sim), independently of \
             $(b,-v).")
  in
  Term.(const (fun v d -> setup_logs (List.length v) d) $ verbose $ debug)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON (load it in Perfetto or \
           chrome://tracing) covering the run.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the metrics registry: Prometheus text format when FILE \
           ends in $(b,.prom), JSON otherwise.")

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Report loads, viability and rule violations")
    Term.(const (fun () p -> check p) $ logs_term $ file_arg 0 "CLUSTER")

let plan_cmd =
  Cmd.v
    (Cmd.info "plan" ~doc:"Run one decision iteration and print the plan")
    Term.(
      const (fun () p t r tr m -> plan p t r tr m)
      $ logs_term $ file_arg 0 "CLUSTER" $ timeout_arg $ ram_arg $ trace_arg
      $ metrics_arg)

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Lint the CP model behind a description and verify the heuristic \
          plan")
    Term.(const (fun () p -> lint p) $ logs_term $ file_arg 0 "CLUSTER")

let actions_cmd =
  Cmd.v
    (Cmd.info "actions" ~doc:"Plan the switch between two descriptions")
    Term.(
      const (fun () c t -> actions c t)
      $ logs_term $ file_arg 0 "CURRENT" $ file_arg 1 "TARGET")

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Run the control loop on the simulated cluster until every vjob \
          (with a program= field) completes")
    Term.(
      const (fun () p t r tr m -> simulate p t r tr m)
      $ logs_term $ file_arg 0 "CLUSTER" $ timeout_arg $ ram_arg $ trace_arg
      $ metrics_arg)

let profile_cmd =
  let vms_arg =
    Arg.(
      value & opt int 54
      & info [ "vms" ] ~docv:"N"
          ~doc:"Number of VMs in the generated instance.")
  in
  let restarts_arg =
    Arg.(
      value & opt int 0
      & info [ "restarts" ] ~docv:"N"
          ~doc:"Luby restarts for the CP search (0 = plain search).")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED" ~doc:"Instance generator seed.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Time one optimisation over a generated Figure 10-style instance \
          and print the per-phase table")
    Term.(
      const (fun () vms t r s tr m -> profile vms t r s tr m)
      $ logs_term $ vms_arg $ timeout_arg $ restarts_arg $ seed_arg
      $ trace_arg $ metrics_arg)

let () =
  let info =
    Cmd.info "entropyctl"
      ~doc:"Plan cluster-wide context switches over cluster descriptions"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            check_cmd; plan_cmd; lint_cmd; actions_cmd; simulate_cmd;
            profile_cmd;
          ]))
