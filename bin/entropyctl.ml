(* entropyctl — inspect a cluster description and plan cluster-wide
   context switches against it.

     entropyctl status  cluster.ecl        viability + rule report
     entropyctl plan    cluster.ecl        one decision iteration + plan
     entropyctl actions cur.ecl new.ecl    raw plan between two specs
     entropyctl lint    cluster.ecl        static analysis of the CP
                                           model and the planned switch
     entropyctl check   [cluster.ecl]      model-check the planned switch:
                                           interleavings + crash states
     entropyctl profile                    one optimisation on a Fig. 10
                                           instance, per-phase timings
     entropyctl explain [--journal FILE]   flight-recorder report: causal
                                           timeline, critical path and
                                           makespan attribution of every
                                           journaled switch *)

open Entropy_core
module Spec = Entropy_cli.Spec
module Obs = Entropy_obs.Obs
module Portfolio = Entropy_place.Portfolio

(* -- logging ---------------------------------------------------------------- *)

(* [-v] raises the global level (info, then debug); [--debug SRC] turns
   debug on for specific sources only ("cp" matches "entropy.cp"). *)
let setup_logs verbosity debug =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level
    (if verbosity >= 2 then Some Logs.Debug
     else if verbosity = 1 then Some Logs.Info
     else Some Logs.Warning);
  List.iter
    (fun name ->
      let matched =
        List.filter
          (fun src ->
            let n = Logs.Src.name src in
            n = name || n = "entropy." ^ name)
          (Logs.Src.list ())
      in
      if matched = [] then
        Printf.eprintf "entropyctl: unknown log source %S (known: %s)\n" name
          (String.concat ", "
             (List.sort String.compare
                (List.map Logs.Src.name (Logs.Src.list ()))))
      else
        List.iter (fun src -> Logs.Src.set_level src (Some Logs.Debug)) matched)
    debug

(* -- observability ----------------------------------------------------------- *)

let obs_setup trace metrics =
  if trace <> None || metrics <> None then begin
    Obs.enabled := true;
    Obs.reset ()
  end

let obs_write trace metrics =
  Option.iter Obs.write_trace trace;
  Option.iter Obs.write_metrics metrics

(* Ring-buffer wrap-around silently truncates traces; surface it
   wherever spans feed an analysis (profile, explain) so a skewed
   attribution cannot pass for a complete one. *)
let warn_dropped_spans () =
  let dropped = Entropy_obs.Trace.dropped () in
  if dropped > 0 then
    Printf.printf
      "warning: %d trace span(s) dropped by ring-buffer wrap-around — \
       phase totals and attribution may be incomplete\n"
      dropped

let write_json_file path json =
  let oc = open_out path in
  output_string oc (Entropy_obs.Json.to_string json);
  output_char oc '\n';
  close_out oc

let load_or_exit path =
  try Spec.load path with
  | Spec.Parse_error { line; message } ->
    Printf.eprintf "%s:%d: %s\n" path line message;
    exit 2
  | Sys_error e ->
    Printf.eprintf "%s\n" e;
    exit 2

(* -- status --------------------------------------------------------------- *)

let status path =
  let spec = load_or_exit path in
  let { Spec.config; demand; vjobs; rules; _ } = spec in
  let cpu, mem = Configuration.loads config demand in
  Printf.printf "%-12s%14s%16s\n" "node" "cpu use" "memory use";
  Array.iteri
    (fun i node ->
      Printf.printf "%-12s%9d /%4d%10d /%5d%s\n" (Spec.node_name spec i)
        cpu.(i) (Node.cpu_capacity node) mem.(i) (Node.memory_mb node)
        (if
           cpu.(i) > Node.cpu_capacity node || mem.(i) > Node.memory_mb node
         then "  OVERLOADED"
         else ""))
    (Configuration.nodes config);
  Printf.printf "\nviable: %b\n" (Configuration.is_viable config demand);
  List.iter
    (fun vj ->
      Printf.printf "vjob %-12s: %s\n" (Vjob.name vj)
        (match Configuration.vjob_state config vj with
        | Some s -> Lifecycle.state_to_string s
        | None -> "inconsistent (switch in progress?)"))
    vjobs;
  (match Placement_rules.violated config rules with
  | [] -> if rules <> [] then Printf.printf "all %d rules hold\n" (List.length rules)
  | violated ->
    List.iter
      (fun r -> Fmt.pr "rule violated: %a@." Placement_rules.pp r)
      violated;
    exit 1);
  if not (Configuration.is_viable config demand) then exit 1

(* -- plan ----------------------------------------------------------------- *)

let plan path cp_timeout engine ram trace metrics =
  obs_setup trace metrics;
  let spec =
    Obs.span ~cat:"loop" ~name:"loop.observe" (fun () -> load_or_exit path)
  in
  let { Spec.config; demand; vjobs; rules; _ } = spec in
  let decision =
    Portfolio.decision ~engine ~deadline:cp_timeout ~rules ~suspend_to_ram:ram
      ()
  in
  let observation = { Decision.config; demand; queue = vjobs; finished = [] } in
  let result =
    Obs.span ~cat:"loop" ~name:"loop.decide" (fun () ->
        decision.Decision.decide observation)
  in
  obs_write trace metrics;
  List.iter
    (fun vj ->
      let before = Configuration.vjob_state config vj in
      let after = Configuration.vjob_state result.Optimizer.target vj in
      if before <> after then
        Printf.printf "vjob %-12s: %s -> %s\n" (Vjob.name vj)
          (match before with
          | Some s -> Lifecycle.state_to_string s
          | None -> "?")
          (match after with
          | Some s -> Lifecycle.state_to_string s
          | None -> "?"))
    vjobs;
  if Plan.is_empty result.Optimizer.plan then
    print_endline "nothing to do: the configuration already matches"
  else begin
    Printf.printf "reconfiguration plan (cost %d):\n" result.Optimizer.cost;
    Fmt.pr "%a" (Spec.pp_plan spec) result.Optimizer.plan;
    let pooled =
      Schedule.makespan (Schedule.of_plan config result.Optimizer.plan)
    in
    (match
       Continuous.schedule ~vjobs ~current:config ~demand
         ~plan:result.Optimizer.plan ()
     with
    | continuous ->
      Printf.printf
        "estimated duration: %.0f s (pool barriers) / %.0f s (continuous)\n"
        pooled
        (Continuous.makespan continuous)
    | exception Continuous.Stuck _ ->
      Printf.printf "estimated duration: %.0f s (pool barriers)\n" pooled)
  end;
  if not result.Optimizer.rules_satisfied then begin
    print_endline "warning: some placement rules could not be satisfied";
    exit 1
  end

(* -- actions (diff between two specs) -------------------------------------- *)

let actions current_path target_path =
  let cur = load_or_exit current_path in
  let tgt = load_or_exit target_path in
  if
    Configuration.vm_count cur.Spec.config
    <> Configuration.vm_count tgt.Spec.config
  then begin
    Printf.eprintf "the two descriptions declare different VM sets\n";
    exit 2
  end;
  let target =
    Rgraph.normalize_sleeping ~current:cur.Spec.config tgt.Spec.config
  in
  match
    Planner.build_plan ~vjobs:cur.Spec.vjobs ~current:cur.Spec.config ~target
      ~demand:cur.Spec.demand ()
  with
  | plan ->
    Printf.printf "plan (cost %d):\n" (Plan.cost cur.Spec.config plan);
    Fmt.pr "%a" (Spec.pp_plan cur) plan
  | exception Planner.Stuck reason ->
    Printf.eprintf "no feasible plan: %s\n" reason;
    exit 1
  | exception Rgraph.Unreachable reason ->
    Printf.eprintf "impossible transition: %s\n" reason;
    exit 1

(* -- lint ------------------------------------------------------------------ *)

(* Static analysis of the reconfiguration problem behind a description:
   lint the CP model the optimizer would search, and replay the
   heuristic (FFD) plan through the independent verifier. *)

let lint path =
  let spec = load_or_exit path in
  let { Spec.config; demand; vjobs; rules; _ } = spec in
  let outcome = Rjsp.solve ~rules ~config ~demand ~queue:vjobs () in
  let placed = List.concat_map Vjob.vms outcome.Rjsp.running in
  let lint_findings =
    if placed = [] then begin
      (* an empty placement makes every model lint vacuous *)
      print_endline
        "model lint: skipped (no vjob admitted, the CP model has no \
         decision variables)";
      []
    end
    else begin
      let model =
        Optimizer.build_model ~rules ~current:config ~demand ~placed
          ~target_base:outcome.Rjsp.ffd_config ()
      in
      let findings =
        Entropy_analysis.Linter.lint ~obj:model.Optimizer.obj
          model.Optimizer.store
      in
      Fmt.pr "%a@." Entropy_analysis.Linter.pp_report findings;
      findings
    end
  in
  let target =
    Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config
  in
  let plan_findings =
    match Planner.build_plan ~vjobs ~current:config ~target ~demand () with
    | plan ->
      let findings =
        Entropy_analysis.Verifier.verify ~vjobs ~current:config ~target
          ~demand plan
      in
      if Plan.is_empty plan then
        print_endline "heuristic plan: empty (nothing to verify)"
      else
        Fmt.pr "heuristic plan (%d actions): %a@." (Plan.action_count plan)
          Entropy_analysis.Verifier.pp_report findings;
      findings
    | exception Planner.Stuck reason ->
      Printf.printf "heuristic plan: stuck (%s), nothing to verify\n" reason;
      []
  in
  if
    plan_findings <> []
    || List.exists
         (function
           | Entropy_analysis.Linter.Inconsistent_model _ -> true
           | _ -> false)
         lint_findings
  then exit 1

(* -- simulate ----------------------------------------------------------------- *)

let simulate path cp_timeout ram trace metrics =
  obs_setup trace metrics;
  let spec = load_or_exit path in
  let with_programs =
    Array.exists (fun p -> p <> []) spec.Spec.programs
  in
  if not with_programs then begin
    Printf.eprintf
      "no vm declares a program= field: nothing to simulate\n\
       (add e.g. `program=C600` to the vm lines)\n";
    exit 2
  end;
  let decision =
    Decision.consolidation ~cp_timeout ~rules:spec.Spec.rules
      ~suspend_to_ram:ram ()
  in
  let result =
    Vsim.Runner.run_custom ~decision ~config:spec.Spec.config
      ~vjobs:spec.Spec.vjobs
      ~programs:(fun vm -> spec.Spec.programs.(vm))
      ()
  in
  Printf.printf "completed %d vjobs in %.1f min (%d control-loop iterations)\n"
    (List.length result.Vsim.Runner.completions)
    (result.Vsim.Runner.makespan /. 60.)
    result.Vsim.Runner.iterations;
  List.iter
    (fun (vj, t) -> Printf.printf "  %-16s done at %7.0f s\n" (Vjob.name vj) t)
    result.Vsim.Runner.completions;
  Printf.printf "\ncluster-wide context switches:\n";
  List.iter
    (fun s -> Fmt.pr "  %a@." Vsim.Executor.pp_record s)
    result.Vsim.Runner.switches;
  obs_write trace metrics

(* -- profile ------------------------------------------------------------------ *)

(* One optimisation over a generated Figure 10-style instance, with the
   observability layer forced on: prints the plan summary, the per-phase
   wall-time table (from the trace spans) and the counter registry. *)

let profile vms cp_timeout engine restarts seed json trace metrics =
  Obs.enabled := true;
  Obs.reset ();
  let instance =
    Obs.span ~cat:"profile" ~name:"profile.generate" (fun () ->
        Vworkload.Generator.generate
          { Vworkload.Generator.default_spec with vm_target = vms; seed })
  in
  let { Vworkload.Generator.config; demand; vjobs } = instance in
  let outcome =
    Obs.span ~cat:"profile" ~name:"profile.rjsp" (fun () ->
        Rjsp.solve ~config ~demand ~queue:vjobs ())
  in
  let restarts = if restarts = 0 then None else Some restarts in
  let placed = List.concat_map Vjob.vms outcome.Rjsp.running in
  (* [--engine cp] keeps the historical direct-optimiser probe (the
     BENCH_cp trajectory depends on its restart behaviour); the other
     engines go through the portfolio *)
  let report =
    Obs.span ~cat:"loop" ~name:"loop.decide" (fun () ->
        match engine with
        | `Cp ->
          let result =
            Optimizer.optimize ~timeout:cp_timeout ?restarts ~vjobs
              ~current:config ~demand ~placed
              ~target_base:outcome.Rjsp.ffd_config
              ~fallback:outcome.Rjsp.ffd_config ()
          in
          None, result
        | (`Anneal | `Portfolio) as engine ->
          let report =
            Portfolio.solve ~deadline:cp_timeout ~engine ~vjobs
              ~current:config ~demand ~placed
              ~target_base:outcome.Rjsp.ffd_config
              ~fallback:outcome.Rjsp.ffd_config ()
          in
          Some report, report.Portfolio.result)
  in
  let portfolio_report, result = report in
  Printf.printf "instance: %d VMs over %d nodes (seed %d), %d vjobs\n" vms
    (Configuration.node_count config)
    seed (List.length vjobs);
  Printf.printf "plan: %d actions, cost %d%s\n"
    (Plan.action_count result.Optimizer.plan)
    result.Optimizer.cost
    (if result.Optimizer.improved then " (beat the heuristic)" else "");
  Option.iter
    (fun r ->
      Printf.printf "engine: %s, winner %s, ffd cost %d%s\n"
        (Portfolio.engine_to_string engine)
        r.Portfolio.winner r.Portfolio.ffd_cost
        (match r.Portfolio.local_cost with
        | Some c -> Printf.sprintf ", best local-search cost %d" c
        | None -> ""))
    portfolio_report;
  (match result.Optimizer.stats with
  | Some st -> Fmt.pr "search: %a@." Fdcp.Search.pp_stats st
  | None -> ());
  Printf.printf "\n%-28s%8s%14s%12s\n" "phase" "count" "total ms" "mean us";
  List.iter
    (fun (name, count, total_us) ->
      Printf.printf "%-28s%8d%14.2f%12.1f\n" name count (total_us /. 1000.)
        (total_us /. float_of_int (max 1 count)))
    (Entropy_obs.Trace.aggregate ());
  (match Entropy_obs.Metrics.counters () with
  | [] -> ()
  | counters ->
    Printf.printf "\n%-36s%12s\n" "counter" "value";
    List.iter (fun (n, v) -> Printf.printf "%-36s%12d\n" n v) counters);
  warn_dropped_spans ();
  (* machine-readable profile, mirroring the [plan --metrics] JSON
     conventions: one object, snake_case keys, seconds/us suffixes *)
  Option.iter
    (fun path ->
      let open Entropy_obs.Json in
      write_json_file path
        (Obj
           [
             ( "instance",
               Obj
                 [
                   ("vms", Int vms);
                   ("nodes", Int (Configuration.node_count config));
                   ("seed", Int seed);
                   ("vjobs", Int (List.length vjobs));
                 ] );
             ( "plan",
               Obj
                 [
                   ("actions", Int (Plan.action_count result.Optimizer.plan));
                   ("cost_mb", Int result.Optimizer.cost);
                   ("improved", Bool result.Optimizer.improved);
                 ] );
             ( "engine",
               Obj
                 (("name", String (Portfolio.engine_to_string engine))
                 ::
                 (match portfolio_report with
                 | None -> []
                 | Some r ->
                   [
                     ("winner", String r.Portfolio.winner);
                     ("ffd_cost_mb", Int r.Portfolio.ffd_cost);
                     ( "local_cost_mb",
                       match r.Portfolio.local_cost with
                       | Some c -> Int c
                       | None -> Null );
                     ("elapsed_s", Float r.Portfolio.elapsed);
                   ])) );
             ( "phases",
               List
                 (List.map
                    (fun (name, count, total_us) ->
                      Obj
                        [
                          ("name", String name);
                          ("count", Int count);
                          ("total_us", Float total_us);
                          ( "mean_us",
                            Float (total_us /. float_of_int (max 1 count)) );
                        ])
                    (Entropy_obs.Trace.aggregate ())) );
             ( "counters",
               Obj
                 (List.map
                    (fun (n, v) -> (n, Int v))
                    (Entropy_obs.Metrics.counters ())) );
             ( "trace",
               Obj
                 [
                   ("recorded", Int (Entropy_obs.Trace.recorded ()));
                   ("dropped", Int (Entropy_obs.Trace.dropped ()));
                 ] );
           ]))
    json;
  obs_write trace metrics

(* -- chaos -------------------------------------------------------------------- *)

(* Fault-injection experiment on a generated Figure 10-style instance:
   run the simulated control loop fault-free, then again with a seeded
   injector (probabilistic action failures, optional scripted node
   crashes), and report retries, timeouts, repairs and the makespan
   inflation. Every repair plan the run executed is re-checked with the
   independent verifier; exit 0 only when all vjobs complete, the final
   configuration is viable and every repair plan is clean.

   With [--journal FILE] every switch goes through the write-ahead
   journal, and [--kill-at T] kills the simulated controller at T
   seconds — the canonical crash: the run reports killed:true and
   [entropyctl resume] picks the journal up. *)

(* the chaos/resume pair must regenerate the exact same instance from
   (vms, nodes, seed): deterministic per-VM compute programs of
   240..719 s of work *)
let chaos_instance ~vms ~nodes ~seed =
  let instance =
    Vworkload.Generator.generate
      {
        Vworkload.Generator.default_spec with
        node_count = nodes;
        vm_target = vms;
        seed;
      }
  in
  let { Vworkload.Generator.config; demand = _; vjobs } = instance in
  let programs vm =
    [
      Vworkload.Program.Compute
        (240. +. float_of_int (((37 * vm) + seed) mod 480));
    ]
  in
  (config, vjobs, programs)

(* -- check (model checker) ---------------------------------------------------

   Derive the (source, target, plan) switch — from a cluster
   description, or a generated Fig. 10-style instance — and hand it to
   the model checker: every interleaving the pool barriers admit (up to
   trace equivalence), every crash cut of the journal trace, plus
   conformance runs of the real executor under enumerated tie-breaks. *)

let derived_switch ~source ~demand ~vjobs ~rules =
  let outcome = Rjsp.solve ~rules ~config:source ~demand ~queue:vjobs () in
  let target =
    Rgraph.normalize_sleeping ~current:source outcome.Rjsp.ffd_config
  in
  match Planner.build_plan ~vjobs ~current:source ~target ~demand () with
  | plan -> (target, plan)
  | exception Planner.Stuck reason ->
    Printf.eprintf "check: planner stuck (%s), nothing to check\n" reason;
    exit 2

let model_check cluster vms nodes seed depth max_states max_crash
    max_violations exhaustive no_crash no_torn sim_runs invariant_names
    json_path seed_file replay_path =
  let module C = Entropy_check.Checker in
  let module I = Entropy_check.Invariant in
  let module W = Entropy_check.Witness in
  let invariants =
    match invariant_names with
    | [] -> I.all
    | names ->
      List.map
        (fun n ->
          match I.of_string n with
          | Some i -> i
          | None ->
            Printf.eprintf "check: unknown invariant %S (known: %s)\n" n
              (String.concat ", " (List.map I.to_string I.all));
            exit 2)
        names
  in
  let source, demand, vjobs, rules =
    match cluster with
    | Some path ->
      let { Spec.config; demand; vjobs; rules; _ } = load_or_exit path in
      (config, demand, vjobs, rules)
    | None ->
      let { Vworkload.Generator.config; demand; vjobs } =
        Vworkload.Generator.generate
          {
            Vworkload.Generator.default_spec with
            node_count = nodes;
            vm_target = vms;
            seed;
          }
      in
      (config, demand, vjobs, [])
  in
  let target, plan = derived_switch ~source ~demand ~vjobs ~rules in
  Printf.printf "check: %d VMs / %d nodes, plan of %d actions in %d pools\n"
    (Configuration.vm_count source)
    (Configuration.node_count source)
    (Plan.action_count plan) (Plan.pool_count plan);
  match replay_path with
  | Some path -> (
    let witness =
      try W.of_file path with
      | W.Malformed m | Sys_error m ->
        Printf.eprintf "check: %s\n" m;
        exit 2
    in
    let ctx = C.make_ctx ~vjobs ~invariants ~source ~target ~demand plan in
    match C.replay ctx witness with
    | None ->
      Printf.printf "replay: schedule not executable against this plan\n";
      exit 1
    | Some [] -> Printf.printf "replay: no violation\n"
    | Some vs ->
      Printf.printf "replay: %d violation(s)\n" (List.length vs);
      List.iter
        (fun v -> Fmt.pr "  %a@." Entropy_check.Invariant.pp_violation v)
        vs;
      exit 1)
  | None ->
    let limits =
      {
        C.depth;
        max_states;
        max_crash_checks = max_crash;
        max_violations;
        exhaustive;
        crash = not no_crash;
        torn = not no_torn;
        sim_runs;
      }
    in
    let report =
      C.check ~vjobs ~invariants ~limits ~source ~target ~demand plan
    in
    Fmt.pr "%a" C.pp_report report;
    Option.iter
      (fun p -> write_json_file p (C.report_to_json report))
      json_path;
    (match (report.C.counterexample, seed_file) with
    | Some c, Some p ->
      W.to_file p c.C.minimized;
      Printf.printf "minimized counterexample written to %s\n" p
    | _ -> ());
    if report.C.violations <> [] then exit 1

let chaos vms nodes seed fail_rate crashes timeout_factor retries cp_timeout
    max_time kill_at journal_path json trace metrics =
  obs_setup trace metrics;
  let config, vjobs, programs = chaos_instance ~vms ~nodes ~seed in
  let vm_count = Configuration.vm_count config in
  let journal =
    Option.map
      (fun path ->
        (* chaos starts a fresh experiment: truncate any stale journal *)
        (try Sys.remove path with Sys_error _ -> ());
        Entropy_journal.Journal.open_file path)
      journal_path
  in
  let run ?injector ?policy ?journal ?kill_at () =
    Vsim.Runner.run_custom ~cp_timeout ~max_time ?injector ?policy ?journal
      ?kill_at ~config ~vjobs ~programs ()
  in
  Printf.printf
    "chaos: %d VMs / %d nodes (seed %d), %d vjobs, fail rate %.0f%%, %d \
     scripted crashes\n"
    vm_count
    (Configuration.node_count config)
    seed (List.length vjobs) (fail_rate *. 100.) (List.length crashes);
  let baseline = run () in
  let models =
    Entropy_fault.Injector.Fail_rate { kind = None; rate = fail_rate }
    :: List.map
         (fun (node, at_s) ->
           Entropy_fault.Injector.Crash_node { node; at_s })
         crashes
  in
  let injector = Entropy_fault.Injector.create ~seed models in
  let policy =
    Entropy_fault.Supervisor.make_policy ~timeout_factor ~max_retries:retries
      ()
  in
  (* the faulty run always goes through a journal: the flight recorder
     reconstructs its timeline from the records afterwards (an
     in-memory journal when no --journal file was asked for) *)
  let flight_journal =
    match journal with Some j -> j | None -> Entropy_journal.Journal.mem ()
  in
  let faulty = run ~injector ~policy ~journal:flight_journal ?kill_at () in
  let flight_records = Entropy_journal.Journal.records flight_journal in
  Option.iter Entropy_journal.Journal.close journal;
  obs_write trace metrics;
  let module R = Vsim.Runner in
  let module E = Vsim.Executor in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 faulty.R.switches in
  let failures = total (fun r -> r.E.failed) in
  let retried = total (fun r -> r.E.retries) in
  let timeouts = total (fun r -> r.E.timeouts) in
  let node_losses = total (fun r -> r.E.node_losses) in
  let salvaged =
    List.length (List.filter (fun rr -> rr.R.source = `Salvaged) faulty.R.repairs)
  in
  let replanned = List.length faulty.R.repairs - salvaged in
  let dirty =
    List.filter
      (fun rr ->
        Entropy_analysis.Verifier.verify ~vjobs:rr.R.queue
          ~current:rr.R.before ~target:rr.R.target ~demand:rr.R.demand
          rr.R.plan
        <> [])
      faulty.R.repairs
  in
  let completed = List.length faulty.R.completions = List.length vjobs in
  let final_viable =
    Configuration.is_viable faulty.R.final_config
      (Demand.uniform ~vm_count Vworkload.Program.compute_demand)
  in
  Printf.printf "fault-free makespan: %7.0f s (%d switches)\n"
    baseline.R.makespan
    (List.length baseline.R.switches);
  Printf.printf "faulty     makespan: %7.0f s (%d switches)  inflation %+.1f%%\n"
    faulty.R.makespan
    (List.length faulty.R.switches)
    (if baseline.R.makespan > 0. then
       (faulty.R.makespan -. baseline.R.makespan) /. baseline.R.makespan
       *. 100.
     else 0.);
  Printf.printf
    "faults: %d action failures, %d retries, %d timeouts, %d node losses\n"
    failures retried timeouts node_losses;
  List.iter
    (fun (node, at, affected) ->
      Printf.printf "  node N%d crashed at %.0f s: %d vjobs resubmitted\n"
        node at (List.length affected))
    faulty.R.crashes;
  Printf.printf "repairs: %d salvaged, %d replanned  (verifier: %d/%d clean)\n"
    salvaged replanned
    (List.length faulty.R.repairs - List.length dirty)
    (List.length faulty.R.repairs);
  List.iter
    (fun rr ->
      Fmt.pr "  dirty %a plan at %.0f s:@." Entropy_fault.Repair.pp_source
        rr.R.source rr.R.at;
      List.iter
        (fun f -> Fmt.pr "    %a@." Entropy_analysis.Verifier.pp_finding f)
        (Entropy_analysis.Verifier.verify ~vjobs:rr.R.queue
           ~current:rr.R.before ~target:rr.R.target ~demand:rr.R.demand
           rr.R.plan))
    dirty;
  Printf.printf "recovery: %d/%d vjobs completed, final configuration %s\n"
    (List.length faulty.R.completions)
    (List.length vjobs)
    (if final_viable then "viable" else "NOT viable");
  (* flight attribution: where the inflation went, repair switches
     charged to recovery *)
  let analyses = Entropy_flight.Report.analyze_records flight_records in
  if analyses <> [] then
    Fmt.pr "flight:@.%a@." Entropy_flight.Report.pp_summary analyses;
  let journal_records =
    match journal_path with
    | Some path -> List.length (fst (Entropy_journal.Journal.load path))
    | None -> 0
  in
  if faulty.R.killed then
    Printf.printf
      "killed at %.0f s with %d/%d vjobs complete; %d journal records for \
       `entropyctl resume`\n"
      (Option.value kill_at ~default:0.)
      (List.length faulty.R.completions)
      (List.length vjobs) journal_records;
  Option.iter
    (fun path ->
      let open Entropy_obs.Json in
      write_json_file path
        (Obj
           [
             ("vms", Int vm_count);
             ("nodes", Int (Configuration.node_count config));
             ("seed", Int seed);
             ("fail_rate", Float fail_rate);
             ("killed", Bool faulty.R.killed);
             ("completed", Bool completed);
             ("final_viable", Bool final_viable);
             ("makespan_s", Float faulty.R.makespan);
             ("switches", Int (List.length faulty.R.switches));
             ("failures", Int failures);
             ("retries", Int retried);
             ("timeouts", Int timeouts);
             ("node_losses", Int node_losses);
             ("repairs_salvaged", Int salvaged);
             ("repairs_replanned", Int replanned);
             ("dirty_repairs", Int (List.length dirty));
             ("journal_records", Int journal_records);
             ( "journal",
               match journal_path with Some p -> String p | None -> Null );
             ("flight", Entropy_flight.Report.to_json analyses);
           ]))
    json;
  (* a killed run is supposed to be incomplete: the convergence checks
     move to the resume; a clean kill still requires clean repairs *)
  if faulty.R.killed then begin
    if dirty <> [] then exit 1
  end
  else if not (completed && final_viable && dirty = []) then exit 1

(* -- resume -------------------------------------------------------------------- *)

(* Pick up a crashed chaos run from its write-ahead journal: regenerate
   the same instance from (vms, nodes, seed), replay the journal,
   reconcile the in-flight switch against the journal-projected
   configuration, execute the resume plan (or the repair plan on
   divergence) and run the loop to completion. The resume plan is
   re-checked with [Verifier.verify_resume]: resume + executed prefix
   must be semantically the original switch. Exit 0 only when every
   vjob completes, the final configuration is viable and the verifier
   is clean. *)

let resume vms nodes seed fail_rate timeout_factor retries cp_timeout
    max_time journal_path json trace metrics =
  obs_setup trace metrics;
  let config, vjobs, programs = chaos_instance ~vms ~nodes ~seed in
  let vm_count = Configuration.vm_count config in
  let records, dropped_lines =
    try Entropy_journal.Journal.load journal_path
    with Sys_error e ->
      Printf.eprintf "%s\n" e;
      exit 2
  in
  Printf.printf "resume: %d journal records from %s%s\n" (List.length records)
    journal_path
    (if dropped_lines = 0 then ""
     else Printf.sprintf " (%d torn lines dropped)" dropped_lines);
  (* flight view of the journal as found: what the interrupted switch
     was doing when the controller died *)
  let pre_crash = Entropy_flight.Report.analyze_records records in
  if pre_crash <> [] then
    Fmt.pr "pre-crash flight:@.%a@." Entropy_flight.Report.pp_summary pre_crash;
  let state = Entropy_journal.Recovery.replay records in
  (* same fault environment as the chaos run: probabilistic failures
     under the journaled injector seed (falling back to --seed) *)
  let injector_seed =
    match state with
    | Some st -> Option.value st.Entropy_journal.Recovery.seed ~default:seed
    | None -> seed
  in
  let injector =
    Entropy_fault.Injector.create ~seed:injector_seed
      [ Entropy_fault.Injector.Fail_rate { kind = None; rate = fail_rate } ]
  in
  let policy =
    Entropy_fault.Supervisor.make_policy ~timeout_factor ~max_retries:retries
      ()
  in
  let journal = Entropy_journal.Journal.open_file journal_path in
  let outcome =
    match state with
    | None -> None
    | Some st ->
      let observed = Entropy_journal.Recovery.projected_config st in
      Vsim.Runner.resume ~cp_timeout ~max_time ~injector ~policy ~journal
        ~records ~observed ~vjobs ~programs ()
  in
  let info, result =
    match outcome with
    | Some (info, result) -> (Some info, result)
    | None ->
      (* no switch had begun: nothing to reconcile, run from scratch *)
      Printf.printf "journal holds no in-flight switch: fresh run\n";
      ( None,
        Vsim.Runner.run_custom ~cp_timeout ~max_time ~injector ~policy
          ~journal ~config ~vjobs ~programs () )
  in
  let all_records = Entropy_journal.Journal.records journal in
  Entropy_journal.Journal.close journal;
  obs_write trace metrics;
  let module R = Vsim.Runner in
  let module Rec = Entropy_journal.Recovery in
  let findings =
    match info with
    | Some { R.state; reconciliation; repaired = false } -> (
      match reconciliation.Rec.plan with
      | Some plan ->
        Entropy_analysis.Verifier.verify_resume ~source:state.Rec.source
          ~original:state.Rec.plan
          ~observed:(Rec.projected_config state)
          ~target:reconciliation.Rec.target
          ~frozen:reconciliation.Rec.frozen_vms ~demand:state.Rec.demand plan
      | None -> [])
    | Some { R.repaired = true; _ } | None ->
      (* the repair path re-targets the switch: original-plan
         equivalence is not expected, the repair verifier in [chaos]
         covers those plans *)
      []
  in
  (match info with
  | Some { R.state; reconciliation; repaired } ->
    Printf.printf
      "reconciled switch %d: %d done, %d pending, %d frozen VMs%s\n"
      state.Rec.switch
      (List.length reconciliation.Rec.done_vms)
      (List.length reconciliation.Rec.pending_vms)
      (List.length reconciliation.Rec.frozen_vms)
      (if repaired then " (diverged: resumed via repair)" else "");
    if findings <> [] then
      Fmt.pr "resume verifier: %a@." Entropy_analysis.Verifier.pp_report
        findings
    else Printf.printf "resume verifier: clean\n"
  | None -> ());
  let completed =
    List.for_all
      (fun vj ->
        List.for_all
          (fun vm ->
            Configuration.state result.R.final_config vm
            = Configuration.Terminated)
          (Vjob.vms vj))
      vjobs
  in
  let final_viable =
    Configuration.is_viable result.R.final_config
      (Demand.uniform ~vm_count Vworkload.Program.compute_demand)
  in
  Printf.printf "resume: %d/%d vjobs completed, final configuration %s\n"
    (List.length result.R.completions)
    (List.length vjobs)
    (if final_viable then "viable" else "NOT viable");
  (* flight view of the whole episode: interrupted switch + everything
     the resumed run appended to the same journal *)
  let episode = Entropy_flight.Report.analyze_records all_records in
  if episode <> [] then
    Fmt.pr "flight:@.%a@." Entropy_flight.Report.pp_summary episode;
  Option.iter
    (fun path ->
      let open Entropy_obs.Json in
      write_json_file path
        (Obj
           [
             ("vms", Int vm_count);
             ("nodes", Int (Configuration.node_count config));
             ("seed", Int seed);
             ("journal", String journal_path);
             ("journal_records", Int (List.length records));
             ("dropped_lines", Int dropped_lines);
             ( "resumed_switch",
               match info with
               | Some i -> Int i.R.state.Rec.switch
               | None -> Null );
             ( "done_vms",
               Int
                 (match info with
                 | Some i -> List.length i.R.reconciliation.Rec.done_vms
                 | None -> 0) );
             ( "pending_vms",
               Int
                 (match info with
                 | Some i -> List.length i.R.reconciliation.Rec.pending_vms
                 | None -> 0) );
             ( "frozen_vms",
               Int
                 (match info with
                 | Some i -> List.length i.R.reconciliation.Rec.frozen_vms
                 | None -> 0) );
             ( "repaired",
               Bool
                 (match info with Some i -> i.R.repaired | None -> false) );
             ("verifier_findings", Int (List.length findings));
             ("completed", Bool completed);
             ("final_viable", Bool final_viable);
             ("makespan_s", Float result.R.makespan);
             ("flight", Entropy_flight.Report.to_json episode);
           ]))
    json;
  if not (completed && final_viable && findings = []) then exit 1

(* -- explain ------------------------------------------------------------------ *)

(* Post-hoc flight-recorder analysis of executed switches: reconstruct
   the causal timeline from a write-ahead journal (or from a fresh
   fault-free run of the generated Fig. 10-style instance when no
   journal is given), extract the critical path, decompose the makespan
   into exhaustive attribution buckets and compare against the planner's
   Table 1 / section 4.2 estimate. Exits non-zero when any analyzed
   switch fails the exactness invariants (buckets must sum to the
   makespan; a switch that executed actions must have a critical
   path). *)

let explain vms nodes seed cp_timeout max_time journal_path switch_sel top
    json gantt trace metrics =
  obs_setup trace metrics;
  let module Flight = Entropy_flight.Report in
  let records =
    match journal_path with
    | Some path ->
      let records, dropped =
        try Entropy_journal.Journal.load path
        with Sys_error e ->
          Printf.eprintf "%s\n" e;
          exit 2
      in
      Printf.printf "explain: %d journal records from %s%s\n"
        (List.length records) path
        (if dropped = 0 then ""
         else Printf.sprintf " (%d torn record(s) dropped)" dropped);
      records
    | None ->
      let config, vjobs, programs = chaos_instance ~vms ~nodes ~seed in
      Printf.printf
        "explain: fault-free run, %d VMs / %d nodes (seed %d), %d vjobs\n"
        (Configuration.vm_count config)
        (Configuration.node_count config)
        seed (List.length vjobs);
      let journal = Entropy_journal.Journal.mem () in
      ignore
        (Vsim.Runner.run_custom ~cp_timeout ~max_time ~journal ~config ~vjobs
           ~programs ());
      Entropy_journal.Journal.records journal
  in
  let analyses = Flight.analyze_records ~top_k:top records in
  let analyses =
    match switch_sel with
    | None -> analyses
    | Some id ->
      List.filter
        (fun (sw, _) -> sw.Entropy_flight.Timeline.switch = id)
        analyses
  in
  obs_write trace metrics;
  if analyses = [] then begin
    Printf.printf "no switches to explain%s\n"
      (match switch_sel with
      | Some id -> Printf.sprintf " (switch %d not in journal)" id
      | None -> "");
    exit 1
  end;
  List.iter (fun a -> Fmt.pr "%a@." Flight.pp a) analyses;
  if List.length analyses > 1 then Fmt.pr "%a@." Flight.pp_summary analyses;
  warn_dropped_spans ();
  Option.iter
    (fun path ->
      write_json_file path
        (Flight.to_json ~trace_dropped:(Entropy_obs.Trace.dropped ())
           analyses))
    json;
  Option.iter (fun path -> Flight.write_gantt path analyses) gantt;
  let bad = List.filter (fun a -> not (Flight.healthy a)) analyses in
  if bad <> [] then begin
    Printf.printf
      "explain: %d switch(es) failed attribution exactness checks\n"
      (List.length bad);
    exit 1
  end

(* -- daemon -------------------------------------------------------------------- *)

(* entropyd in the simulator: the overload-tolerant event-driven control
   plane of lib/daemon. [daemon run] cold-starts an episode of open
   arrivals under admission control, trigger coalescing and the
   degradation ladder; with [--kill-at] it dies mid-storm leaving only
   the write-ahead journal, and [daemon resume] picks the same episode
   up from that journal. *)

module Daemon = Entropy_daemon.Daemon

let daemon_report_out (report : Daemon.report) json trace metrics =
  Fmt.pr "%a@." Daemon.pp_report report;
  obs_write trace metrics;
  Option.iter (fun p -> write_json_file p (Daemon.to_json report)) json;
  if report.Daemon.killed then ()
    (* a killed run is supposed to be incomplete: the soak checks move
       to the resume *)
  else if
    not
      (report.Daemon.all_terminated && report.Daemon.final_viable
     && report.Daemon.queue_bounded && report.Daemon.degradation_bounded)
  then exit 1

let daemon_config subs nodes seed cap batch arrivals burst debounce fail_rate
    crashes deterministic kill_at max_time =
  {
    Daemon.default_config with
    seed;
    nodes;
    submissions = subs;
    base_rate = arrivals;
    burst_rate = burst;
    admission_cap = cap;
    admit_batch = batch;
    debounce_s = debounce;
    deterministic;
    fail_rate;
    crashes;
    kill_at;
    max_time;
  }

let daemon_run subs nodes seed cap batch arrivals burst debounce fail_rate
    crashes deterministic kill_at max_time journal_path json trace metrics =
  obs_setup trace metrics;
  let c =
    daemon_config subs nodes seed cap batch arrivals burst debounce fail_rate
      crashes deterministic kill_at max_time
  in
  let journal =
    Option.map
      (fun path ->
        (* a daemon run starts a fresh episode: truncate any stale journal *)
        (try Sys.remove path with Sys_error _ -> ());
        Entropy_journal.Journal.open_file path)
      journal_path
  in
  let report = Daemon.run ?journal c in
  Option.iter Entropy_journal.Journal.close journal;
  daemon_report_out report json trace metrics

let daemon_resume subs nodes seed cap batch arrivals burst debounce fail_rate
    crashes deterministic max_time journal_path json trace metrics =
  obs_setup trace metrics;
  let c =
    daemon_config subs nodes seed cap batch arrivals burst debounce fail_rate
      crashes deterministic None max_time
  in
  let records, dropped =
    try Entropy_journal.Journal.load journal_path
    with Sys_error e ->
      Printf.eprintf "%s\n" e;
      exit 2
  in
  Printf.printf "daemon resume: %d journal records from %s%s\n"
    (List.length records) journal_path
    (if dropped > 0 then Printf.sprintf " (%d torn dropped)" dropped else "");
  let journal = Entropy_journal.Journal.open_file journal_path in
  let report = Daemon.resume ~journal ~records c in
  Entropy_journal.Journal.close journal;
  daemon_report_out report json trace metrics

(* -- cmdliner ---------------------------------------------------------------- *)

open Cmdliner

let file_arg index name =
  Arg.(required & pos index (some file) None & info [] ~docv:name)

let timeout_arg =
  Arg.(
    value & opt float 1.0
    & info [ "cp-timeout" ] ~doc:"CP solving timeout in seconds.")

let ram_arg =
  Arg.(
    value & flag
    & info [ "ram" ] ~doc:"Prefer suspend-to-RAM when memory allows.")

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("cp", `Cp); ("anneal", `Anneal); ("portfolio", `Portfolio) ])
        `Cp
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Placement engine: $(b,cp) (the paper's CP branch & bound), \
           $(b,anneal) (anytime local search: simulated annealing + LNS) or \
           $(b,portfolio) (local search, then CP warm-started with the \
           incumbent, under one deadline).")

let logs_term =
  let verbose =
    Arg.(
      value & flag_all
      & info [ "v"; "verbose" ]
          ~doc:"Increase log verbosity (info; twice for debug).")
  in
  let debug =
    Arg.(
      value
      & opt (list string) []
      & info [ "debug" ] ~docv:"SRC"
          ~doc:
            "Comma-separated log sources to set to debug level (e.g. \
             $(b,cp,sim) for entropy.cp and entropy.sim), independently of \
             $(b,-v).")
  in
  Term.(const (fun v d -> setup_logs (List.length v) d) $ verbose $ debug)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON (load it in Perfetto or \
           chrome://tracing) covering the run.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the metrics registry: Prometheus text format when FILE \
           ends in $(b,.prom), JSON otherwise.")

let status_cmd =
  Cmd.v
    (Cmd.info "status" ~doc:"Report loads, viability and rule violations")
    Term.(const (fun () p -> status p) $ logs_term $ file_arg 0 "CLUSTER")

let check_cmd =
  let cluster_arg =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"CLUSTER"
          ~doc:
            "Cluster description to check; omitted, a Fig. 10-style \
             instance is generated from $(b,--vms)/$(b,--nodes)/$(b,--seed).")
  in
  let vms_arg =
    Arg.(
      value & opt int 54
      & info [ "vms" ] ~docv:"N"
          ~doc:"Number of VMs in the generated instance.")
  in
  let nodes_arg =
    Arg.(
      value & opt int 15
      & info [ "nodes" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED" ~doc:"Instance generator seed.")
  in
  let depth_arg =
    Arg.(
      value & opt int 8
      & info [ "depth" ] ~docv:"N"
          ~doc:
            "Branching depth of the bounded exploration: all interleavings \
             for the first $(i,N) steps, the canonical schedule beyond. \
             Ignored with $(b,--exhaustive).")
  in
  let max_states_arg =
    Arg.(
      value & opt int 200_000
      & info [ "max-states" ] ~docv:"N" ~doc:"Explored-state budget.")
  in
  let max_crash_arg =
    Arg.(
      value & opt int 4_000
      & info [ "max-crash-checks" ] ~docv:"N"
          ~doc:
            "Crash-recovery re-check budget (unbounded with \
             $(b,--exhaustive)).")
  in
  let max_violations_arg =
    Arg.(
      value & opt int 16
      & info [ "max-violations" ] ~docv:"N"
          ~doc:"Stop exploring after this many distinct violations.")
  in
  let exhaustive_arg =
    Arg.(
      value & flag
      & info [ "exhaustive" ]
          ~doc:
            "Explore the whole state space: no depth bound, no sleep-set \
             pruning, no crash budget, every torn-frame byte offset. Only \
             trace-equivalent duplicate states are skipped.")
  in
  let no_crash_arg =
    Arg.(
      value & flag
      & info [ "no-crash" ] ~doc:"Skip crash-state exploration.")
  in
  let no_torn_arg =
    Arg.(
      value & flag
      & info [ "no-torn" ] ~doc:"Skip torn-frame byte-cut checks.")
  in
  let sim_runs_arg =
    Arg.(
      value & opt int 8
      & info [ "sim-runs" ] ~docv:"N"
          ~doc:
            "Conformance runs of the real discrete-event executor under \
             enumerated tie-break schedules (0 disables).")
  in
  let invariant_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "invariant" ] ~docv:"NAME"
          ~doc:
            "Check only this invariant (repeatable): $(b,capacity), \
             $(b,lifecycle), $(b,precedence), $(b,write-ahead), \
             $(b,resume-equiv), $(b,cost-monotone), $(b,termination). \
             Default: all.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable report to $(i,FILE).")
  in
  let seed_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "seed-file" ] ~docv:"FILE"
          ~doc:
            "Write the minimized counterexample witness to $(i,FILE) \
             (replay it with $(b,--replay)).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a witness seed file against the derived plan instead \
             of exploring.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check the planned switch: explore executor interleavings \
          and journal crash states, checking capacity, lifecycle, \
          precedence, write-ahead, resume-equivalence, cost and \
          termination invariants")
    Term.(
      const (fun () c v n s d ms mc mv ex nc nt sr inv j sf rp ->
          model_check c v n s d ms mc mv ex nc nt sr inv j sf rp)
      $ logs_term $ cluster_arg $ vms_arg $ nodes_arg $ seed_arg $ depth_arg
      $ max_states_arg $ max_crash_arg $ max_violations_arg $ exhaustive_arg
      $ no_crash_arg $ no_torn_arg $ sim_runs_arg $ invariant_arg $ json_arg
      $ seed_file_arg $ replay_arg)

let plan_cmd =
  Cmd.v
    (Cmd.info "plan" ~doc:"Run one decision iteration and print the plan")
    Term.(
      const (fun () p t e r tr m -> plan p t e r tr m)
      $ logs_term $ file_arg 0 "CLUSTER" $ timeout_arg $ engine_arg $ ram_arg
      $ trace_arg $ metrics_arg)

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Lint the CP model behind a description and verify the heuristic \
          plan")
    Term.(const (fun () p -> lint p) $ logs_term $ file_arg 0 "CLUSTER")

let actions_cmd =
  Cmd.v
    (Cmd.info "actions" ~doc:"Plan the switch between two descriptions")
    Term.(
      const (fun () c t -> actions c t)
      $ logs_term $ file_arg 0 "CURRENT" $ file_arg 1 "TARGET")

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Run the control loop on the simulated cluster until every vjob \
          (with a program= field) completes")
    Term.(
      const (fun () p t r tr m -> simulate p t r tr m)
      $ logs_term $ file_arg 0 "CLUSTER" $ timeout_arg $ ram_arg $ trace_arg
      $ metrics_arg)

let profile_cmd =
  let vms_arg =
    Arg.(
      value & opt int 54
      & info [ "vms" ] ~docv:"N"
          ~doc:"Number of VMs in the generated instance.")
  in
  let restarts_arg =
    Arg.(
      value & opt int 0
      & info [ "restarts" ] ~docv:"N"
          ~doc:"Luby restarts for the CP search (0 = plain search).")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED" ~doc:"Instance generator seed.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the machine-readable profile (instance, plan, per-phase \
             timings, counters, trace drop count) to $(i,FILE).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Time one optimisation over a generated Figure 10-style instance \
          and print the per-phase table")
    Term.(
      const (fun () vms t e r s js tr m -> profile vms t e r s js tr m)
      $ logs_term $ vms_arg $ timeout_arg $ engine_arg $ restarts_arg
      $ seed_arg $ json_arg $ trace_arg $ metrics_arg)

let chaos_cmd =
  let vms_arg =
    Arg.(
      value & opt int 54
      & info [ "vms" ] ~docv:"N"
          ~doc:"Number of VMs in the generated instance.")
  in
  let nodes_arg =
    Arg.(
      value & opt int 15
      & info [ "nodes" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Seed for both the instance generator and the injector.")
  in
  let fail_rate_arg =
    Arg.(
      value & opt float 0.1
      & info [ "fail-rate" ] ~docv:"P"
          ~doc:"Per-attempt action failure probability, in [0,1].")
  in
  let crash_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'@' int float) []
      & info [ "crash" ] ~docv:"NODE@TIME"
          ~doc:
            "Crash node $(i,NODE) permanently at simulated time $(i,TIME) \
             seconds (repeatable).")
  in
  let timeout_factor_arg =
    Arg.(
      value & opt float 3.0
      & info [ "timeout-factor" ] ~docv:"F"
          ~doc:"Supervisor timeout = F x expected action duration.")
  in
  let retries_arg =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:"Supervised retries per action (exponential backoff).")
  in
  let chaos_timeout_arg =
    Arg.(
      value & opt float 0.25
      & info [ "cp-timeout" ] ~doc:"CP solving timeout in seconds.")
  in
  let max_time_arg =
    Arg.(
      value & opt float 1_000_000.
      & info [ "max-time" ] ~docv:"S"
          ~doc:"Give up after this much simulated time.")
  in
  let kill_at_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "kill-at" ] ~docv:"S"
          ~doc:
            "Kill the controller at simulated time $(i,S): the run stops \
             dead mid-switch, leaving only the write-ahead journal behind \
             for $(b,entropyctl resume).")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write the write-ahead switch journal to $(i,FILE) (truncated \
             first).")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write a machine-readable run report to $(i,FILE).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the simulated control loop under fault injection and report \
          retries, repairs and makespan inflation vs the fault-free run")
    Term.(
      const (fun () v n s fr cr tf re t mt ka jp js tr m ->
          chaos v n s fr cr tf re t mt ka jp js tr m)
      $ logs_term $ vms_arg $ nodes_arg $ seed_arg $ fail_rate_arg
      $ crash_arg $ timeout_factor_arg $ retries_arg $ chaos_timeout_arg
      $ max_time_arg $ kill_at_arg $ journal_arg $ json_arg $ trace_arg
      $ metrics_arg)

let resume_cmd =
  let vms_arg =
    Arg.(
      value & opt int 54
      & info [ "vms" ] ~docv:"N"
          ~doc:
            "Number of VMs in the generated instance (must match the \
             killed run).")
  in
  let nodes_arg =
    Arg.(
      value & opt int 15
      & info [ "nodes" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Instance generator seed; the injector seed is recovered from \
             the journal when present.")
  in
  let fail_rate_arg =
    Arg.(
      value & opt float 0.1
      & info [ "fail-rate" ] ~docv:"P"
          ~doc:"Per-attempt action failure probability, in [0,1].")
  in
  let timeout_factor_arg =
    Arg.(
      value & opt float 3.0
      & info [ "timeout-factor" ] ~docv:"F"
          ~doc:"Supervisor timeout = F x expected action duration.")
  in
  let retries_arg =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:"Supervised retries per action (exponential backoff).")
  in
  let resume_timeout_arg =
    Arg.(
      value & opt float 0.25
      & info [ "cp-timeout" ] ~doc:"CP solving timeout in seconds.")
  in
  let max_time_arg =
    Arg.(
      value & opt float 1_000_000.
      & info [ "max-time" ] ~docv:"S"
          ~doc:"Give up after this much simulated time.")
  in
  let journal_pos =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"JOURNAL")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write a machine-readable resume report to $(i,FILE).")
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Recover a killed chaos run from its write-ahead journal: replay, \
          reconcile the in-flight switch, resume idempotently and run to \
          completion")
    Term.(
      const (fun () v n s fr tf re t mt jp js tr m ->
          resume v n s fr tf re t mt jp js tr m)
      $ logs_term $ vms_arg $ nodes_arg $ seed_arg $ fail_rate_arg
      $ timeout_factor_arg $ retries_arg $ resume_timeout_arg $ max_time_arg
      $ journal_pos $ json_arg $ trace_arg $ metrics_arg)

let explain_cmd =
  let vms_arg =
    Arg.(
      value & opt int 54
      & info [ "vms" ] ~docv:"N"
          ~doc:"Number of VMs in the generated instance (no --journal).")
  in
  let nodes_arg =
    Arg.(
      value & opt int 15
      & info [ "nodes" ] ~docv:"N" ~doc:"Number of nodes (no --journal).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Instance generator seed (no --journal).")
  in
  let explain_timeout_arg =
    Arg.(
      value & opt float 0.25
      & info [ "cp-timeout" ] ~doc:"CP solving timeout in seconds.")
  in
  let max_time_arg =
    Arg.(
      value & opt float 1_000_000.
      & info [ "max-time" ] ~docv:"S"
          ~doc:"Give up after this much simulated time.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Analyze the switches recorded in this write-ahead journal \
             instead of running the generated instance.")
  in
  let switch_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "switch" ] ~docv:"N"
          ~doc:"Only explain the switch with this journal id.")
  in
  let top_arg =
    Arg.(
      value & opt int 3
      & info [ "top" ] ~docv:"K"
          ~doc:"What-if estimates for the top K critical actions.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable analysis to $(i,FILE).")
  in
  let gantt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "gantt" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event gantt view (one track per node, \
             barrier and critical-path markers) to $(i,FILE).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Reconstruct executed switches from a write-ahead journal (or a \
          fresh run), extract the critical path and attribute every second \
          of the makespan to work, contention, barriers, dependencies, \
          retries or recovery")
    Term.(
      const (fun () v n s t mt jp sw top js g tr m ->
          explain v n s t mt jp sw top js g tr m)
      $ logs_term $ vms_arg $ nodes_arg $ seed_arg $ explain_timeout_arg
      $ max_time_arg $ journal_arg $ switch_arg $ top_arg $ json_arg
      $ gantt_arg $ trace_arg $ metrics_arg)

(* -- journal ------------------------------------------------------------------- *)

(* Debug export: decode a write-ahead journal (binary frames or legacy
   JSON lines, auto-detected) and print each record as one JSON line on
   stdout. Torn-tail diagnostics go to stderr so the output stays
   pipeable. *)

let journal_dump journal_path strict =
  let records, dropped =
    try Entropy_journal.Journal.load journal_path
    with Sys_error e ->
      Printf.eprintf "%s\n" e;
      exit 2
  in
  List.iter
    (fun r ->
      print_endline
        (Entropy_obs.Json.to_string (Entropy_journal.Record.to_json r)))
    records;
  if dropped > 0 then begin
    Printf.eprintf "journal dump: %d torn record(s) dropped at tail%s\n"
      dropped
    (if strict then " (failing: --strict)" else "");
    if strict then exit 1
  end

let journal_cmd =
  let journal_pos =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"JOURNAL")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit non-zero when a torn tail was detected and dropped.")
  in
  let dump_cmd =
    Cmd.v
      (Cmd.info "dump"
         ~doc:
           "Decode a write-ahead journal (binary frames or legacy JSON \
            lines, auto-detected) and print each record as one JSON line \
            on stdout")
      Term.(
        const (fun () p s -> journal_dump p s)
        $ logs_term $ journal_pos $ strict_arg)
  in
  Cmd.group
    (Cmd.info "journal" ~doc:"Inspect write-ahead switch journals")
    [ dump_cmd ]

let daemon_cmd =
  let subs_arg =
    Arg.(
      value & opt int 200
      & info [ "subs" ] ~docv:"N"
          ~doc:"Open-arrival vjob submissions to generate.")
  in
  let nodes_arg =
    Arg.(
      value & opt int 24
      & info [ "nodes" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Seed for the instance, the arrival schedule, the crash \
             script and the fault injector.")
  in
  let cap_arg =
    Arg.(
      value & opt int 64
      & info [ "cap" ] ~docv:"N"
          ~doc:
            "Admission-queue bound: submissions past it are rejected, \
             never queued.")
  in
  let batch_arg =
    Arg.(
      value & opt int 8
      & info [ "batch" ] ~docv:"N" ~doc:"Admissions per decision round.")
  in
  let arrivals_arg =
    Arg.(
      value
      & opt float (1. /. 60.)
      & info [ "arrivals" ] ~docv:"RATE"
          ~doc:"Calm-phase arrival rate, submissions per second.")
  in
  let burst_arg =
    Arg.(
      value & opt float 0.25
      & info [ "burst" ] ~docv:"RATE"
          ~doc:"Burst-phase arrival rate, submissions per second.")
  in
  let debounce_arg =
    Arg.(
      value & opt float 5.
      & info [ "debounce" ] ~docv:"S"
          ~doc:"Trigger coalescing window in simulated seconds.")
  in
  let fail_rate_arg =
    Arg.(
      value & opt float 0.1
      & info [ "fail-rate" ] ~docv:"P"
          ~doc:"Per-attempt action failure probability, in [0,1].")
  in
  let crashes_arg =
    Arg.(
      value & opt int 0
      & info [ "crashes" ] ~docv:"N"
          ~doc:
            "Scripted permanent node crashes spread over the arrival \
             span (seeded).")
  in
  let deterministic_arg =
    Arg.(
      value & flag
      & info [ "deterministic" ]
          ~doc:
            "Replace the wall-clock-bounded solver portfolio with the \
             FFD incumbent at every ladder rung: the whole episode \
             becomes a pure function of $(b,--seed).")
  in
  let max_time_arg =
    Arg.(
      value & opt float 1_000_000.
      & info [ "max-time" ] ~docv:"S"
          ~doc:"Give up after this much simulated time.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write a machine-readable soak report to $(i,FILE).")
  in
  let run_cmd =
    let kill_at_arg =
      Arg.(
        value
        & opt (some float) None
        & info [ "kill-at" ] ~docv:"S"
            ~doc:
              "Kill the daemon at simulated time $(i,S), leaving only \
               the write-ahead journal for $(b,daemon resume).")
    in
    let journal_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "journal" ] ~docv:"FILE"
            ~doc:
              "Write the write-ahead journal (switches, admissions, \
               ladder transitions) to $(i,FILE), truncated first.")
    in
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Cold-start one daemon episode: open-arrival submissions \
            under admission control, trigger coalescing and the \
            graceful-degradation ladder")
      Term.(
        const (fun () su n se c b a bu d fr cr det ka mt jp js tr m ->
            daemon_run su n se c b a bu d fr cr det ka mt jp js tr m)
        $ logs_term $ subs_arg $ nodes_arg $ seed_arg $ cap_arg $ batch_arg
        $ arrivals_arg $ burst_arg $ debounce_arg $ fail_rate_arg
        $ crashes_arg $ deterministic_arg $ kill_at_arg $ max_time_arg
        $ journal_arg $ json_arg $ trace_arg $ metrics_arg)
  in
  let resume_cmd =
    let journal_pos =
      Arg.(required & pos 0 (some file) None & info [] ~docv:"JOURNAL")
    in
    Cmd.v
      (Cmd.info "resume"
         ~doc:
           "Pick a killed daemon up from its journal: settled admissions \
            and ladder rung replay, the in-flight switch reconciles, \
            missed arrivals re-submit (flags must match the killed run)")
      Term.(
        const (fun () su n se c b a bu d fr cr det mt jp js tr m ->
            daemon_resume su n se c b a bu d fr cr det mt jp js tr m)
        $ logs_term $ subs_arg $ nodes_arg $ seed_arg $ cap_arg $ batch_arg
        $ arrivals_arg $ burst_arg $ debounce_arg $ fail_rate_arg
        $ crashes_arg $ deterministic_arg $ max_time_arg $ journal_pos
        $ json_arg $ trace_arg $ metrics_arg)
  in
  Cmd.group
    (Cmd.info "daemon"
       ~doc:
         "The online control-plane daemon: overload-tolerant event loop \
          with admission control, backpressure and graceful degradation")
    [ run_cmd; resume_cmd ]

let () =
  let info =
    Cmd.info "entropyctl"
      ~doc:"Plan cluster-wide context switches over cluster descriptions"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            status_cmd; check_cmd; plan_cmd; lint_cmd; actions_cmd;
            simulate_cmd; profile_cmd; chaos_cmd; resume_cmd; explain_cmd;
            journal_cmd; daemon_cmd;
          ]))
