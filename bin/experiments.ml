(* Experiment drivers: one subcommand per table/figure of the paper.

     experiments fig3      — Figure 3: duration of each VM context switch
     experiments table1    — Table 1: the action cost model
     experiments fig10     — Figure 10: FFD vs Entropy reconfiguration cost
     experiments fig11     — Figure 11: cost and duration of the switches
     experiments fig12     — Figure 12: FCFS static allocation diagram
     experiments fig13     — Figure 13: resource utilization over time
     experiments headline  — the 40%-reduction comparison
     experiments all       — everything above *)

open Entropy_core
module Nasgrid = Vworkload.Nasgrid
module Generator = Vworkload.Generator

(* -- Figure 3 ---------------------------------------------------------------- *)

let fig3 () =
  Exp_common.header
    "Figure 3: duration of each transition vs VM memory size (seconds)";
  let rows = Vsim.Perf_model.figure3_rows () in
  let ops = List.map fst (snd (List.hd rows)) in
  Printf.printf "%-22s" "operation";
  List.iter (fun (m, _) -> Printf.printf "%10s" (Printf.sprintf "%dMB" m)) rows;
  print_newline ();
  List.iter
    (fun op ->
      Printf.printf "%-22s" op;
      List.iter
        (fun (_, cells) -> Printf.printf "%10.1f" (List.assoc op cells))
        rows;
      print_newline ())
    ops;
  print_newline ();
  Printf.printf
    "with a co-resident busy VM, local operations slow down by x%.1f and\n\
     remote ones by x%.1f (deceleration measured in section 2.3)\n"
    Vsim.Perf_model.defaults.Vsim.Perf_model.decel_local
    Vsim.Perf_model.defaults.Vsim.Perf_model.decel_remote

(* -- Table 1 ----------------------------------------------------------------- *)

let table1 () =
  Exp_common.header "Table 1: cost of an action on a VM (cost unit = MB)";
  let nodes = Exp_common.testbed_nodes ~count:3 () in
  let mems = [ 512; 1024; 2048 ] in
  let vms =
    Array.of_list
      (List.mapi
         (fun i m -> Vm.make ~id:i ~name:(Printf.sprintf "vm%d" i) ~memory_mb:m)
         mems)
  in
  let config = Configuration.make ~nodes ~vms in
  Printf.printf "%-22s%10s%10s%10s\n" "action" "512MB" "1024MB" "2048MB";
  let row name f =
    Printf.printf "%-22s" name;
    List.iteri (fun i _ -> Printf.printf "%10d" (Cost.action config (f i))) mems;
    print_newline ()
  in
  row "migrate" (fun i -> Action.Migrate { vm = i; src = 0; dst = 1 });
  row "run" (fun i -> Action.Run { vm = i; dst = 0 });
  row "stop" (fun i -> Action.Stop { vm = i; host = 0 });
  row "suspend" (fun i -> Action.Suspend { vm = i; host = 0 });
  row "resume (local)" (fun i -> Action.Resume { vm = i; src = 0; dst = 0 });
  row "resume (remote)" (fun i -> Action.Resume { vm = i; src = 0; dst = 1 })

(* -- Figure 10 ---------------------------------------------------------------- *)

let fig10_sample ~timeout ?restarts instance =
  let { Generator.config; demand; vjobs } = instance in
  let outcome = Rjsp.solve ~config ~demand ~queue:vjobs () in
  let target =
    Rgraph.normalize_sleeping ~current:config outcome.Rjsp.ffd_config
  in
  match Planner.build_plan ~vjobs ~current:config ~target ~demand () with
  | exception Planner.Stuck _ -> None
  | ffd_plan ->
    let ffd_cost = Plan.cost config ffd_plan in
    let result =
      Optimizer.optimize ~timeout ?restarts ~vjobs ~current:config ~demand
        ~placed:(List.concat_map Vjob.vms outcome.Rjsp.running)
        ~target_base:outcome.Rjsp.ffd_config
        ~fallback:outcome.Rjsp.ffd_config ()
    in
    Some (ffd_cost, result.Optimizer.cost)

let fig10 samples timeout restarts () =
  let restarts = if restarts = 0 then None else Some restarts in
  Exp_common.header
    (Printf.sprintf
       "Figure 10: reconfiguration cost, 200 nodes (FFD vs Entropy, %d \
        samples per point, CP timeout %.1fs%s)"
       samples timeout
       (match restarts with
       | Some r -> Printf.sprintf ", %d Luby restarts" r
       | None -> ""));
  Printf.printf "%8s%16s%16s%12s%10s\n" "VMs" "FFD cost" "Entropy cost"
    "reduction" "samples";
  List.iter
    (fun vm_count ->
      let instances = Generator.figure10_instances ~samples ~vm_count () in
      let results =
        List.filter_map (fig10_sample ~timeout ?restarts) instances
      in
      let n = List.length results in
      if n = 0 then Printf.printf "%8d%16s\n" vm_count "(no sample)"
      else begin
        let mean l =
          List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
        in
        let ffd = mean (List.map (fun (f, _) -> float_of_int f) results) in
        let ent = mean (List.map (fun (_, e) -> float_of_int e) results) in
        let reduction =
          if ffd > 0. then 100. *. (ffd -. ent) /. ffd else 0.
        in
        Printf.printf "%8d%16.0f%16.0f%11.1f%%%10d\n" vm_count ffd ent
          reduction n
      end)
    Generator.figure10_vm_counts

(* -- Figures 11 / 12 / 13 / headline ------------------------------------------- *)

let print_switches (r : Vsim.Runner.result) =
  Printf.printf "%10s%12s%8s%8s%8s%8s%8s%7s\n" "cost" "duration" "migr"
    "susp" "resume" "run" "stop" "pools";
  List.iter
    (fun (s : Vsim.Executor.record) ->
      Printf.printf "%10d%11.0fs%8d%8d%8d%8d%8d%7d\n" s.Vsim.Executor.cost
        (Vsim.Executor.duration s) s.Vsim.Executor.migrations
        s.Vsim.Executor.suspends s.Vsim.Executor.resumes s.Vsim.Executor.runs
        s.Vsim.Executor.stops s.Vsim.Executor.pools)
    (List.sort
       (fun a b -> Int.compare a.Vsim.Executor.cost b.Vsim.Executor.cost)
       r.Vsim.Runner.switches)

let fig11 cls cp_timeout () =
  Exp_common.header
    "Figure 11: cost and duration of the cluster-wide context switches";
  let r = Exp_common.run_entropy ~cls ~cp_timeout () in
  print_switches r;
  Printf.printf
    "\n%d switches; mean duration %.0f s; makespan %.1f min\n\
     (simulated durations include contention; the contention-free\n\
     estimate of Entropy_core.Schedule is what the decision module can\n\
     compute before executing)\n"
    (List.length r.Vsim.Runner.switches)
    (Vsim.Runner.mean_switch_duration r)
    (Exp_common.minutes r.Vsim.Runner.makespan)

let gantt (run : Batch.Static_alloc.run) =
  let makespan = Batch.Static_alloc.makespan run in
  let width = 60 in
  let cell = makespan /. float_of_int width in
  List.iter
    (fun (p : Batch.Job.placement) ->
      let job = p.Batch.Job.job in
      let line =
        String.init width (fun i ->
            let t = float_of_int i *. cell in
            if t >= p.Batch.Job.start && t < p.Batch.Job.start +. job.Batch.Job.actual
            then '#'
            else if t >= p.Batch.Job.start && t < Batch.Job.slot_end p then '.'
            else ' ')
      in
      Printf.printf "%-12s|%s| %2d nodes\n" job.Batch.Job.name line
        job.Batch.Job.nodes_required)
    run.Batch.Static_alloc.schedule.Batch.Rms.placements

let fig12 cls () =
  Exp_common.header
    "Figure 12: allocation diagram with a static FCFS scheduler\n\
     (# running, . reserved-but-idle slot tail)";
  let run = Exp_common.run_static ~cls () in
  gantt run;
  Printf.printf "\n%-12s%8s%12s%12s%12s\n" "job" "nodes" "start(min)"
    "end(min)" "slot(min)";
  List.iter
    (fun (p : Batch.Job.placement) ->
      let job = p.Batch.Job.job in
      Printf.printf "%-12s%8d%12.1f%12.1f%12.1f\n" job.Batch.Job.name
        job.Batch.Job.nodes_required
        (Exp_common.minutes p.Batch.Job.start)
        (Exp_common.minutes (p.Batch.Job.start +. job.Batch.Job.actual))
        (Exp_common.minutes (Batch.Job.slot_end p)))
    run.Batch.Static_alloc.schedule.Batch.Rms.placements;
  Printf.printf "\nFCFS makespan: %.1f min\n"
    (Exp_common.minutes (Batch.Static_alloc.makespan run))

let fig13 cls cp_timeout series_out () =
  Exp_common.header
    "Figure 13: resource utilization of the VMs (Entropy vs FCFS)";
  let entropy = Exp_common.run_entropy ~cls ~cp_timeout () in
  let static = Exp_common.run_static ~cls () in
  let static_series = Batch.Static_alloc.series ~period:60. static in
  let capacity_cpu = 11 * 200 in
  Printf.printf "%10s%16s%14s%16s%14s\n" "time(min)" "Entropy mem(GB)"
    "Entropy cpu%" "FCFS mem(GB)" "FCFS cpu%";
  let entropy_at t =
    let rec closest best = function
      | [] -> best
      | (p : Vsim.Metrics.point) :: rest ->
        if Float.abs (p.Vsim.Metrics.time -. t) < Float.abs (best.Vsim.Metrics.time -. t)
        then closest p rest
        else closest best rest
    in
    match entropy.Vsim.Runner.series with
    | [] -> None
    | p :: rest -> Some (closest p rest)
  in
  let horizon =
    Float.max entropy.Vsim.Runner.makespan (Batch.Static_alloc.makespan static)
  in
  let rec loop t =
    if t <= horizon then begin
      let e_mem, e_cpu =
        match entropy_at t with
        | Some p when t <= entropy.Vsim.Runner.makespan +. 60. ->
          ( float_of_int p.Vsim.Metrics.mem_used_mb /. 1024.,
            p.Vsim.Metrics.cpu_demand_pct )
        | _ -> (0., 0.)
      in
      let f_mem, f_cpu =
        match
          List.find_opt (fun (ts, _) -> Float.abs (ts -. t) < 30.) static_series
        with
        | Some (_, (mem, cpu)) ->
          ( float_of_int mem /. 1024.,
            100. *. float_of_int cpu /. float_of_int capacity_cpu )
        | None -> (0., 0.)
      in
      Printf.printf "%10.0f%16.1f%14.1f%16.1f%14.1f\n" (Exp_common.minutes t)
        e_mem e_cpu f_mem f_cpu;
      loop (t +. 120.)
    end
  in
  loop 0.;
  match series_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc
      (Entropy_obs.Json.to_string
         (Vsim.Metrics.points_to_json entropy.Vsim.Runner.series));
    output_char oc '\n';
    close_out oc;
    Printf.printf "\nEntropy utilization series written to %s\n" path

let headline cls cp_timeout () =
  Exp_common.header
    "Headline: dynamic consolidation + context switch vs static FCFS";
  let entropy = Exp_common.run_entropy ~cls ~cp_timeout () in
  let static = Exp_common.run_static ~cls () in
  let fcfs_min = Exp_common.minutes (Batch.Static_alloc.makespan static) in
  let entropy_min = Exp_common.minutes entropy.Vsim.Runner.makespan in
  let lb =
    Batch.Rms.preemptive_lower_bound ~capacity:11
      (List.map fst static.Batch.Static_alloc.traces)
  in
  Printf.printf "FCFS static allocation : %8.1f min\n" fcfs_min;
  Printf.printf "Entropy                : %8.1f min\n" entropy_min;
  Printf.printf "reduction              : %8.1f %% (paper: 40%%)\n"
    (100. *. (fcfs_min -. entropy_min) /. fcfs_min);
  Printf.printf "ideal preemption bound : %8.1f min\n" (Exp_common.minutes lb);
  Printf.printf "context switches       : %8d\n"
    (List.length entropy.Vsim.Runner.switches);
  Printf.printf "mean switch duration   : %8.0f s (paper: ~70 s)\n"
    (Vsim.Runner.mean_switch_duration entropy);
  let resumes, local =
    List.fold_left
      (fun (r, l) (s : Vsim.Executor.record) ->
        (r + s.Vsim.Executor.resumes, l + s.Vsim.Executor.local_resumes))
      (0, 0) entropy.Vsim.Runner.switches
  in
  Printf.printf "local resumes          : %8d / %d (paper: 21 / 28)\n" local
    resumes

(* -- ablations ------------------------------------------------------------------ *)

let ablation cls cp_timeout () =
  Exp_common.header
    "Ablation: decision-module variants on the section 5.2 workload";
  let nodes = Exp_common.testbed_nodes () in
  let traces = Exp_common.section52_traces ~cls () in
  let variants =
    [
      ("consolidation (paper)", Decision.consolidation ~cp_timeout:cp_timeout ());
      ( "consolidation + suspend-to-RAM",
        Decision.consolidation ~cp_timeout ~suspend_to_ram:true () );
      ("no CP optimisation (FFD only)", Decision.ffd_only ());
      ( "best-fit packing",
        Decision.consolidation ~cp_timeout ~heuristic:Ffd.Best_fit () );
      ( "worst-fit packing",
        Decision.consolidation ~cp_timeout ~heuristic:Ffd.Worst_fit () );
    ]
  in
  let variants =
    variants
    @ [
        ( "continuous switch execution",
          Decision.consolidation ~cp_timeout () );
      ]
  in
  Printf.printf "%-34s%12s%10s%12s%10s\n" "variant" "makespan" "switches"
    "mean dur" "suspends";
  List.iter
    (fun (name, decision) ->
      let execution =
        if name = "continuous switch execution" then `Continuous else `Pools
      in
      let r = Vsim.Runner.run_entropy ~decision ~execution ~nodes ~traces () in
      let suspends =
        List.fold_left
          (fun acc (s : Vsim.Executor.record) -> acc + s.Vsim.Executor.suspends)
          0 r.Vsim.Runner.switches
      in
      Printf.printf "%-34s%9.1fmin%10d%11.0fs%10d\n%!" name
        (Exp_common.minutes r.Vsim.Runner.makespan)
        (List.length r.Vsim.Runner.switches)
        (Vsim.Runner.mean_switch_duration r)
        suspends)
    variants

(* Staggered submissions: jobs arrive over time instead of together —
   queue dynamics beyond the paper's simultaneous-submission experiment.
   The RMS baseline is the *online* event-driven simulation (nodes freed
   at completion), i.e. a baseline strictly stronger than Figure 12's
   rigid slots. *)
let staggered cls cp_timeout spacing () =
  Exp_common.header
    (Printf.sprintf
       "Staggered submissions (one vjob every %.0f s): Entropy vs online RMS"
       spacing);
  let nodes = Exp_common.testbed_nodes () in
  let traces = Exp_common.section52_traces ~cls () in
  let entropy =
    Vsim.Runner.run_entropy ~cp_timeout ~arrival_spacing:spacing ~nodes
      ~traces ()
  in
  let jobs =
    List.mapi
      (fun i t ->
        let j =
          Batch.Static_alloc.job_of_trace ~node_cpu:200 ~node_mem:3584 ~id:i t
        in
        Batch.Job.make ~id:i ~name:j.Batch.Job.name
          ~arrival:(float_of_int i *. spacing)
          ~nodes_required:j.Batch.Job.nodes_required
          ~walltime:j.Batch.Job.walltime ~actual:j.Batch.Job.actual ())
      traces
  in
  let online = Batch.Rms.simulate ~capacity:11 jobs in
  Printf.printf "Entropy makespan     : %.1f min (%d switches)\n"
    (Exp_common.minutes entropy.Vsim.Runner.makespan)
    (List.length entropy.Vsim.Runner.switches);
  Printf.printf "online RMS makespan  : %.1f min\n"
    (Exp_common.minutes online.Batch.Rms.makespan);
  Printf.printf "reduction            : %.1f %%\n"
    (100.
    *. (online.Batch.Rms.makespan -. entropy.Vsim.Runner.makespan)
    /. online.Batch.Rms.makespan)

(* Pool barriers vs continuous (event-driven) execution: estimated switch
   durations on Figure 10-style instances — the refinement Entropy 2 /
   BtrPlace brought to this paper's pool model. *)
let continuous samples timeout () =
  Exp_common.header
    "Continuous vs pool-based switch execution (estimated durations)";
  Printf.printf "%8s%14s%16s%12s\n" "VMs" "pooled (s)" "continuous (s)"
    "reduction";
  List.iter
    (fun vm_count ->
      let instances = Generator.figure10_instances ~samples ~vm_count () in
      let results =
        List.filter_map
          (fun { Generator.config; demand; vjobs } ->
            let outcome = Rjsp.solve ~config ~demand ~queue:vjobs () in
            match
              Optimizer.optimize ~timeout ~vjobs ~current:config ~demand
                ~placed:(List.concat_map Vjob.vms outcome.Rjsp.running)
                ~target_base:outcome.Rjsp.ffd_config
                ~fallback:outcome.Rjsp.ffd_config ()
            with
            | exception Planner.Stuck _ -> None
            | result -> (
              let plan = result.Optimizer.plan in
              let pooled = Schedule.makespan (Schedule.of_plan config plan) in
              match
                Continuous.schedule ~vjobs ~current:config ~demand ~plan ()
              with
              | exception Continuous.Stuck _ -> None
              | c -> Some (pooled, Continuous.makespan c)))
          instances
      in
      match results with
      | [] -> Printf.printf "%8d%14s\n" vm_count "(no sample)"
      | rs ->
        let mean f =
          List.fold_left (fun acc r -> acc +. f r) 0. rs
          /. float_of_int (List.length rs)
        in
        let pooled = mean fst and cont = mean snd in
        Printf.printf "%8d%14.0f%16.0f%11.1f%%\n" vm_count pooled cont
          (100. *. (pooled -. cont) /. Float.max pooled 1e-9))
    [ 54; 108; 216; 324 ]

let all samples timeout cls () =
  fig3 ();
  table1 ();
  fig10 samples timeout 0 ();
  fig11 cls timeout ();
  fig12 cls ();
  fig13 cls timeout None ();
  headline cls timeout ();
  ablation cls timeout ();
  staggered cls timeout 120. ();
  continuous samples timeout ()

(* -- cmdliner ------------------------------------------------------------------ *)

open Cmdliner

let samples_arg =
  Arg.(value & opt int 10 & info [ "samples" ] ~doc:"Samples per Figure 10 point (paper: 30).")

let timeout_arg =
  Arg.(
    value & opt float 0.5
    & info [ "cp-timeout" ]
        ~doc:"CP solving timeout in seconds (paper: 40 s on 2006 hardware).")

let cls_arg =
  let parse = function
    | "W" | "w" -> Ok Nasgrid.W
    | "A" | "a" -> Ok Nasgrid.A
    | "B" | "b" -> Ok Nasgrid.B
    | s -> Error (`Msg (Printf.sprintf "unknown NGB class %S (use W, A or B)" s))
  in
  let print ppf c = Fmt.string ppf (Nasgrid.class_to_string c) in
  Arg.(
    value
    & opt (conv (parse, print)) Nasgrid.W
    & info [ "class" ] ~doc:"NGB class (W, A or B) for the cluster experiments.")

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let fig3_cmd = cmd "fig3" "Figure 3: transition durations" Term.(const fig3 $ const ())
let table1_cmd = cmd "table1" "Table 1: action costs" Term.(const table1 $ const ())

let restarts_arg =
  Arg.(
    value & opt int 0
    & info [ "restarts" ]
        ~doc:"Luby restarts for the CP search (0 = single run).")

let fig10_cmd =
  cmd "fig10" "Figure 10: FFD vs Entropy reconfiguration cost"
    Term.(const fig10 $ samples_arg $ timeout_arg $ restarts_arg $ const ())

let fig11_cmd =
  cmd "fig11" "Figure 11: switch costs and durations"
    Term.(const fig11 $ cls_arg $ timeout_arg $ const ())

let fig12_cmd =
  cmd "fig12" "Figure 12: FCFS allocation diagram"
    Term.(const fig12 $ cls_arg $ const ())

let fig13_series_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "series" ] ~docv:"FILE"
        ~doc:"Also write the Entropy utilization series as JSON to FILE.")

let fig13_cmd =
  cmd "fig13" "Figure 13: utilization over time"
    Term.(const fig13 $ cls_arg $ timeout_arg $ fig13_series_arg $ const ())

let headline_cmd =
  cmd "headline" "Makespan comparison (the 40% claim)"
    Term.(const headline $ cls_arg $ timeout_arg $ const ())

let ablation_cmd =
  cmd "ablation" "Decision-module variants (RAM suspends, packing, no CP)"
    Term.(const ablation $ cls_arg $ timeout_arg $ const ())

let spacing_arg =
  Arg.(
    value & opt float 120.
    & info [ "spacing" ] ~doc:"Seconds between successive submissions.")

let staggered_cmd =
  cmd "staggered" "Staggered submissions vs an online RMS"
    Term.(const staggered $ cls_arg $ timeout_arg $ spacing_arg $ const ())

let continuous_cmd =
  cmd "continuous" "Pool barriers vs continuous switch execution"
    Term.(const continuous $ samples_arg $ timeout_arg $ const ())

let all_cmd =
  cmd "all" "Run every experiment"
    Term.(const all $ samples_arg $ timeout_arg $ cls_arg $ const ())

let () =
  let info =
    Cmd.info "experiments"
      ~doc:"Reproduce the tables and figures of the cluster-wide context switch paper"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig3_cmd;
            table1_cmd;
            fig10_cmd;
            fig11_cmd;
            fig12_cmd;
            fig13_cmd;
            headline_cmd;
            ablation_cmd;
            staggered_cmd;
            continuous_cmd;
            all_cmd;
          ]))
